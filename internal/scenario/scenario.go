// Package scenario is the declarative layer above the models: one
// Scenario value describes a machine (hosts/PIMs, memory and interconnect
// timing, parallelism) plus a workload (%WL, instruction mix, remote
// fraction, or a named internal/workload kernel), and a Backend interface
// runs that same design point on every model that supports it — the
// closed-form analytic study-1 model, the MVA/queueing-theory model, the
// discrete-event parcel simulation, and the hybrid composition.
//
// The paper's whole argument rests on comparing the same machine/workload
// point across models (its §3.1.2 validates the analytic model against the
// Workbench simulation; its §5.2 explains the parcel results with the
// Saavedra-Barrera model). This package makes that comparison a first-class
// operation: presets name the paper's design points (and extensions), and
// CrossValidate runs one scenario on all supporting backends and checks
// agreement within stated tolerances.
package scenario

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cache"
	"repro/internal/hostpim"
	"repro/internal/hybrid"
	"repro/internal/parcel"
	"repro/internal/parcelsys"
	"repro/internal/rng"
	"repro/internal/workload"
)

// Machine describes the hardware side of a design point. All times are in
// HWP cycles, following the paper's normalization.
type Machine struct {
	// N is the number of PIM (LWP) nodes.
	N int
	// TLCycle is the LWP cycle time in HWP cycles (Table 1: 5).
	TLCycle float64
	// TMH is the HWP main-memory access time on a cache miss (90).
	TMH float64
	// TCH is the HWP cache access time (2).
	TCH float64
	// TML is the LWP local memory access time (30).
	TML float64
	// Pmiss is the HWP cache miss rate on high-locality work (0.1).
	Pmiss float64
	// PmissLow is the HWP miss rate on low-locality work under the
	// locality-aware control policy (1.0).
	PmissLow float64
	// MemCycles is the local memory access time of a parcel-study node
	// (study 2's PIM-like 10 cycles). Only parcel scenarios use it;
	// hybrid scenarios use TML for the LWP phase instead. The machine
	// backend uses it as the VM's flat LD/ST/AMO cost in LWP cycles.
	MemCycles float64
	// Latency is the flat one-way inter-PIM latency in cycles. On a hop
	// Topology the machine backend reads it as the per-hop cost instead.
	Latency float64

	// The remaining fields parameterize the execution-driven machine
	// backend only (Workload.Program != "").

	// MemWords is the per-node memory size of the VM in 64-bit words
	// (0 = 16384).
	MemWords int
	// SpawnCycles is the VM's local parcel-launch cost (0 = the
	// hardware-assisted 2 cycles).
	SpawnCycles float64
	// Topology selects the VM's parcel interconnect: "" or "flat" is the
	// paper's fixed-delay network; "ring", "mesh", "torus", and
	// "hypercube" route parcels over internal/network hop topologies
	// with Latency cycles per hop. Mesh and torus need a square node
	// count, hypercube a power of two.
	Topology string
	// PagePolicy, when non-empty ("open" or "closed"), times every VM
	// memory operation through a per-node internal/dram row-buffer bank
	// instead of the flat MemCycles.
	PagePolicy string
	// RunParallel is the number of OS-level workers one run uses. On the
	// machine backend it is isa.Machine.Parallelism: the VM nodes are
	// partitioned and advanced in conservative lookahead windows, with
	// results byte-identical to the serial run for any value. On the sim
	// backend it partitions the DES models over a sim.ParKernel: study-1
	// results are bit-identical to serial for every value; study-2 and
	// hybrid scenarios run parcelsys's partitioned formulation, whose
	// results are identical for every value >= 1 but differ in their
	// exact draws (not in expectation) from 0. 0 or 1 runs serially.
	RunParallel int

	// The fault-injection knobs (machine scenarios only; see
	// internal/fault). When any of them is nonzero the run arms a
	// deterministic fault plan and the VM switches to its reliable
	// ack/timeout/retransmit delivery protocol, so programs complete
	// under loss and the run reports degraded-delivery metrics (drops,
	// retries, delivered, goodput). All six at zero is *structurally* a
	// fault-free run: no plan is built and the metrics are byte-identical
	// to a baseline that never heard of faults.

	// FaultDrop, FaultCorrupt, FaultDup are per-transmission-attempt
	// probabilities in [0, 1) of a parcel being dropped, corrupted (CRC-
	// rejected at the receiver), or duplicated.
	FaultDrop    float64
	FaultCorrupt float64
	FaultDup     float64
	// FaultJitter bounds per-attempt extra delivery delay, uniform in
	// [0, FaultJitter] cycles. Jitter only adds latency, so the parallel
	// executor's declared lookahead still holds.
	FaultJitter float64
	// Straggler, when >= 2 (rounded), slows a deterministic quarter of
	// the nodes by that factor on memory and spawn costs.
	Straggler float64
	// FaultSeed keys the fault plan; 0 derives a seed from the run's
	// Config.Seed, so replications see different fault draws.
	FaultSeed uint64
}

// Workload describes the work offered to the machine.
type Workload struct {
	// W is the total work in operations (study 1; Table 1: 100e6).
	W float64
	// PctWL is the low-temporal-locality fraction assigned to the PIM
	// array (0…1). Zero with RemoteFrac > 0 means a pure parcel-study
	// (study 2) scenario.
	PctWL float64
	// MixLS is the load/store fraction of the instruction mix (0.30).
	MixLS float64
	// RemoteFrac is the fraction of PIM memory accesses that reference
	// another PIM node (study 2's communication knob). Zero means the
	// paper's study-1 assumption of perfectly partitioned threads.
	RemoteFrac float64
	// Parallelism is the number of parcels/threads per PIM node.
	Parallelism int
	// Horizon is the simulated time for parcel-study runs, in cycles.
	Horizon float64
	// Kernel, when non-empty, derives PctWL/Pmiss/MixLS from a named
	// internal/workload kernel measured against a concrete cache instead
	// of taking them as givens. Known kernels: stream, gups,
	// pointer-chase, stencil, histogram.
	Kernel string
	// KernelWeight is the op-weight of Kernel in an application whose
	// remainder is host-resident work at the Table 1 miss rate
	// (0 means the default 0.6).
	KernelWeight float64
	// Program, when non-empty, makes this an execution-driven scenario:
	// the machine backend assembles and runs the named ISA program
	// (internal/isa) on the VM instead of evaluating a statistical
	// model. Known programs: gups, treesum, ping, triad.
	Program string
	// Updates is the program's per-thread work parameter: random updates
	// per thread (gups), round trips (ping), or vector words (treesum,
	// triad). Zero selects the program's default.
	Updates int
}

// Scenario is one fully described design point: a machine, a workload, and
// the execution-policy knobs the studies vary.
type Scenario struct {
	// Name identifies the scenario in registries, CLIs, and metrics.
	Name string
	// About is a one-line description for listings.
	About string

	Machine  Machine
	Workload Workload

	// Control selects the study-1 control-run cache policy.
	Control hostpim.ControlPolicy
	// Overlap runs the HWP and LWP phases concurrently instead of the
	// paper's strictly alternating flow.
	Overlap bool
	// Software uses software-only parcel overheads instead of the paper's
	// hardware-assisted cost point.
	Software bool

	// Tol overrides the cross-backend agreement tolerance per metric
	// (see DefaultTolerances). Useful where models legitimately diverge —
	// e.g. hybrid closed forms vs the calibrated simulation.
	Tol map[string]float64
}

// Config controls one backend run.
type Config struct {
	// Seed drives all stochastic draws; every backend is deterministic
	// given (Scenario, Config).
	Seed uint64
	// Quick shrinks workload sizes, horizons, and kernel measurements for
	// tests: W is clamped to 1e6 ops, Horizon to 20000 cycles.
	Quick bool
	// Cancel, when non-nil, is polled by long-running backends (today the
	// execution-driven machine backend); once it returns true the run
	// stops early with an error wrapping isa.ErrCanceled. It must be safe
	// to call concurrently.
	Cancel func() bool
}

// Quick-mode clamps (never raised, only lowered).
const (
	quickMaxW       = 1e6
	quickMaxHorizon = 20000
	quickMaxUpdates = 64
	measureOpsFull  = 200000
	measureOpsQuick = 40000
)

// Result is one backend's answer for a scenario: named metrics in the
// shared metric space (see the Metric* constants).
type Result struct {
	Backend string
	Metrics map[string]float64
}

// MetricKeys returns the result's metric names, sorted — iterate with this
// to keep rendered output deterministic.
func (r Result) MetricKeys() []string {
	keys := make([]string, 0, len(r.Metrics))
	for k := range r.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Canonical metric names. Backends emit the subset that their model
// defines; CrossValidate compares the intersection.
const (
	// MetricGain is control time / test time (study 1, Fig. 5).
	MetricGain = "gain"
	// MetricTotal is the test system's total cycles.
	MetricTotal = "total"
	// MetricRelative is total normalized by the fixed-miss HWP-only time.
	MetricRelative = "relative"
	// MetricRatio is test ops / control ops (study 2, Fig. 11).
	MetricRatio = "ratio"
	// MetricCtrlIdle is the control system's mean idle fraction.
	MetricCtrlIdle = "ctrl_idle"
	// MetricTestIdle is the parcel system's mean idle fraction.
	MetricTestIdle = "test_idle"
	// MetricEfficiency is the PIM-node busy fraction during the LWP phase.
	MetricEfficiency = "efficiency"
)

// Kind classifies a scenario by which study's machinery it exercises.
type Kind int

// Scenario kinds.
const (
	// KindStudy1 is a host+PIM locality split with no inter-PIM
	// communication (the paper's first study).
	KindStudy1 Kind = iota
	// KindParcel is a pure communication study: no host phase, remote
	// accesses over the interconnect (the paper's second study).
	KindParcel
	// KindHybrid composes both: the LWP phase includes a remote-access
	// fraction over the PIM interconnect.
	KindHybrid
	// KindMachine is execution-driven: an assembled ISA program runs on
	// the multi-node VM (the machine backend) instead of a statistical
	// model being evaluated.
	KindMachine
)

func (k Kind) String() string {
	switch k {
	case KindStudy1:
		return "study1"
	case KindParcel:
		return "parcel"
	case KindHybrid:
		return "hybrid"
	case KindMachine:
		return "machine"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kind classifies the scenario from its workload fields.
func (s Scenario) Kind() Kind {
	if s.Workload.Program != "" {
		return KindMachine
	}
	if s.Workload.RemoteFrac > 0 {
		if s.Workload.PctWL > 0 || s.Workload.Kernel != "" {
			return KindHybrid
		}
		return KindParcel
	}
	return KindStudy1
}

// Validate checks the scenario for internal consistency.
func (s Scenario) Validate() error {
	m, w := s.Machine, s.Workload
	switch {
	case s.Name == "":
		return fmt.Errorf("scenario: empty name")
	case m.N <= 0:
		return fmt.Errorf("scenario %s: N = %d", s.Name, m.N)
	case m.TLCycle <= 0 || m.TMH <= 0 || m.TCH <= 0 || m.TML <= 0:
		return fmt.Errorf("scenario %s: non-positive machine timing", s.Name)
	case m.Pmiss < 0 || m.Pmiss > 1 || m.PmissLow < 0 || m.PmissLow > 1:
		return fmt.Errorf("scenario %s: miss rate out of [0,1]", s.Name)
	case m.Latency < 0:
		return fmt.Errorf("scenario %s: Latency = %g", s.Name, m.Latency)
	case w.PctWL < 0 || w.PctWL > 1:
		return fmt.Errorf("scenario %s: PctWL = %g", s.Name, w.PctWL)
	case w.MixLS <= 0 || w.MixLS > 1:
		return fmt.Errorf("scenario %s: MixLS = %g", s.Name, w.MixLS)
	case w.RemoteFrac < 0 || w.RemoteFrac > 1:
		return fmt.Errorf("scenario %s: RemoteFrac = %g", s.Name, w.RemoteFrac)
	case w.KernelWeight < 0 || w.KernelWeight > 1:
		return fmt.Errorf("scenario %s: KernelWeight = %g", s.Name, w.KernelWeight)
	}
	if w.Kernel != "" {
		if _, ok := kernelAbouts[w.Kernel]; !ok {
			return fmt.Errorf("scenario %s: unknown kernel %q (known: %v)",
				s.Name, w.Kernel, KernelNames())
		}
	}
	if s.Kind() == KindMachine {
		return s.validateMachine()
	}
	if m.FaultDrop != 0 || m.FaultCorrupt != 0 || m.FaultDup != 0 ||
		m.FaultJitter != 0 || m.Straggler != 0 || m.FaultSeed != 0 {
		return fmt.Errorf("scenario %s: fault-injection fields apply only to machine scenarios", s.Name)
	}
	if s.Kind() != KindParcel && w.W <= 0 {
		return fmt.Errorf("scenario %s: W = %g", s.Name, w.W)
	}
	if w.RemoteFrac > 0 {
		switch {
		case w.Parallelism <= 0:
			return fmt.Errorf("scenario %s: Parallelism = %d with remote accesses", s.Name, w.Parallelism)
		case w.Horizon <= 0:
			return fmt.Errorf("scenario %s: Horizon = %g with remote accesses", s.Name, w.Horizon)
		case s.Kind() == KindParcel && m.MemCycles <= 0:
			return fmt.Errorf("scenario %s: MemCycles = %g in a parcel scenario", s.Name, m.MemCycles)
		}
	}
	return nil
}

// Overhead returns the parcel cost model the scenario selects.
func (s Scenario) Overhead() parcel.CostModel {
	if s.Software {
		return parcel.SoftwareOnly()
	}
	return parcel.HardwareAssisted()
}

// effectiveW applies the quick-mode clamp.
func (s Scenario) effectiveW(cfg Config) float64 {
	if cfg.Quick && s.Workload.W > quickMaxW {
		return quickMaxW
	}
	return s.Workload.W
}

// effectiveHorizon applies the quick-mode clamp.
func (s Scenario) effectiveHorizon(cfg Config) float64 {
	if cfg.Quick && s.Workload.Horizon > quickMaxHorizon {
		return quickMaxHorizon
	}
	return s.Workload.Horizon
}

// effectiveUpdates resolves the machine-program work parameter: the
// program default when unset, quick-clamped (to a WideWords multiple, for
// the vector programs) in quick mode.
func (s Scenario) effectiveUpdates(cfg Config) int {
	u := s.Workload.Updates
	if u == 0 {
		u = machinePrograms[s.Workload.Program].defaultUpdates
	}
	if cfg.Quick && u > quickMaxUpdates {
		u = quickMaxUpdates
	}
	return u
}

// HostParams maps the scenario onto the study-1 parameter struct. Named
// kernels are measured against a concrete cache and folded into
// %WL/Pmiss/MixLS via workload.FitParams, closing the loop from concrete
// op stream to model point.
func (s Scenario) HostParams(cfg Config) (hostpim.Params, error) {
	if err := s.Validate(); err != nil {
		return hostpim.Params{}, err
	}
	p := hostpim.Params{
		W:        s.effectiveW(cfg),
		PctWL:    s.Workload.PctWL,
		N:        s.Machine.N,
		TLCycle:  s.Machine.TLCycle,
		TMH:      s.Machine.TMH,
		TCH:      s.Machine.TCH,
		TML:      s.Machine.TML,
		Pmiss:    s.Machine.Pmiss,
		PmissLow: s.Machine.PmissLow,
		MixLS:    s.Workload.MixLS,
		Control:  s.Control,
		Overlap:  s.Overlap,
	}
	if s.Workload.Kernel != "" {
		prof, err := s.measureKernel(cfg)
		if err != nil {
			return hostpim.Params{}, err
		}
		weight := s.Workload.KernelWeight
		if weight == 0 {
			weight = 0.6
		}
		// The application is the named kernel plus a host-resident
		// remainder at the Table 1 point; Partition classifies the kernel
		// by its measured miss rate, FitParams folds the mixture into the
		// model's %WL/Pmiss/MixLS.
		resident := workload.Profile{Kernel: "host-resident", MissRate: p.Pmiss, MixLS: p.MixLS}
		placements := workload.Partition([]workload.Profile{prof, resident})
		p, err = workload.FitParams(p, placements, []float64{weight, 1 - weight})
		if err != nil {
			return hostpim.Params{}, err
		}
	}
	return p, p.Validate()
}

// ParcelParams maps the scenario onto the study-2 parameter struct. For a
// hybrid scenario the LWP phase is expressed in HWP-cycle units: parcelsys
// operations cost one cycle each, so the instruction mix is rescaled so
// that the expected busy time between remote events matches the
// Saavedra-Barrera run length R = eOps·TLcycle + TML the hybrid closed
// form uses — the two backends then model the same phase.
func (s Scenario) ParcelParams(cfg Config) (parcelsys.Params, error) {
	if err := s.Validate(); err != nil {
		return parcelsys.Params{}, err
	}
	p := parcelsys.Params{
		Nodes:       s.Machine.N,
		Parallelism: s.Workload.Parallelism,
		RemoteFrac:  s.Workload.RemoteFrac,
		Latency:     s.Machine.Latency,
		Overhead:    s.Overhead(),
		Horizon:     s.effectiveHorizon(cfg),
		Seed:        cfg.Seed,
		RunParallel: s.Machine.RunParallel,
	}
	if s.Kind() == KindHybrid {
		// Useful cycles per memory access in HWP-cycle units.
		eCycles := (1 - s.Workload.MixLS) / s.Workload.MixLS * s.Machine.TLCycle
		p.MixMem = 1 / (1 + eCycles)
		p.MemCycles = s.Machine.TML
	} else {
		p.MixMem = s.Workload.MixLS
		p.MemCycles = s.Machine.MemCycles
	}
	return p, p.Validate()
}

// HybridParams maps the scenario onto the hybrid composition's parameters.
func (s Scenario) HybridParams(cfg Config) (hybrid.Params, error) {
	host, err := s.HostParams(cfg)
	if err != nil {
		return hybrid.Params{}, err
	}
	p := hybrid.Params{
		Host:           host,
		RemoteFrac:     s.Workload.RemoteFrac,
		Latency:        s.Machine.Latency,
		ThreadsPerNode: s.Workload.Parallelism,
		Overhead:       s.Overhead(),
	}
	return p, p.Validate()
}

// kernelAbouts names the known workload kernels.
var kernelAbouts = map[string]string{
	"stream":        "sequential array sweep, spatial locality only",
	"gups":          "random read-modify-write over a huge table",
	"pointer-chase": "dependent loads over a random permutation cycle",
	"stencil":       "5-point grid sweep with heavy reuse",
	"histogram":     "Zipf-skewed scatter into a small bucket table",
}

// KernelNames returns the known kernel names, sorted.
func KernelNames() []string {
	out := make([]string, 0, len(kernelAbouts))
	for k := range kernelAbouts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// measureKey identifies one kernel measurement; the drive is fully
// deterministic given (kernel, seed, quick).
type measureKey struct {
	kernel string
	seed   uint64
	quick  bool
}

// measureMemo caches kernel measurements — by far the most expensive step
// of a fitted-workload HostParams call (hundreds of thousands of cache
// accesses) and re-run identically by every backend, replicate, and sweep
// point that shares the scenario's kernel and seed.
var measureMemo = newMemoCache[measureKey, workload.Profile](256)

// measureKernel drives the named kernel through a concrete 32 KiB 4-way
// LRU cache and returns its measured profile.
func (s Scenario) measureKernel(cfg Config) (workload.Profile, error) {
	key := measureKey{kernel: s.Workload.Kernel, seed: cfg.Seed, quick: cfg.Quick}
	return memoize(measureMemo, key, func() (workload.Profile, error) {
		gen, err := newKernel(s.Workload.Kernel, rng.NewWithStream(cfg.Seed, 9001), cfg.Quick)
		if err != nil {
			return workload.Profile{}, err
		}
		ops := int64(measureOpsFull)
		if cfg.Quick {
			ops = measureOpsQuick
		}
		ccfg := cache.Config{SizeBytes: 32 * 1024, LineBytes: 64, Ways: 4, Policy: cache.LRU}
		return workload.Measure(gen, ccfg, nil, ops)
	})
}

// newKernel constructs a generator by name with deterministic geometry.
func newKernel(name string, st *rng.Stream, quick bool) (workload.Generator, error) {
	const mix = 0.3
	switch name {
	case "stream":
		return workload.NewStreamer(st, 1<<22, 64, mix), nil
	case "gups":
		return workload.NewGUPS(st, 1<<26, mix), nil
	case "pointer-chase":
		n := int64(1 << 14)
		if quick {
			n = 1 << 13
		}
		return workload.NewPointerChase(st, n, mix), nil
	case "stencil":
		return workload.NewStencil(st, 256, 256, mix), nil
	case "histogram":
		return workload.NewHistogram(st, 512, 1.1, mix), nil
	default:
		return nil, fmt.Errorf("scenario: unknown kernel %q (known: %v)", name, KernelNames())
	}
}

// relErr is the symmetric relative difference |a-b| / max(|a|,|b|).
func relErr(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}
