package scenario

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/hostpim"
	"repro/internal/parcelsys"
)

func TestPresetsValidateAndAreUnique(t *testing.T) {
	if len(Presets()) < 10 {
		t.Fatalf("want >= 10 presets, have %d", len(Presets()))
	}
	seen := map[string]bool{}
	for _, s := range Presets() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if seen[s.Name] {
			t.Errorf("duplicate preset name %q", s.Name)
		}
		seen[s.Name] = true
		if s.About == "" {
			t.Errorf("%s: empty About", s.Name)
		}
	}
}

func TestFindPreset(t *testing.T) {
	s, err := Find("paper-baseline")
	if err != nil {
		t.Fatal(err)
	}
	if s.Workload.PctWL != 0.5 || s.Machine.N != 32 {
		t.Errorf("paper-baseline = %%WL %g, N %d", s.Workload.PctWL, s.Machine.N)
	}
	if _, err := Find("no-such"); err == nil || !strings.Contains(err.Error(), "unknown preset") {
		t.Errorf("want unknown-preset error, got %v", err)
	}
}

func TestKindClassification(t *testing.T) {
	for name, want := range map[string]Kind{
		"paper-baseline":  KindStudy1,
		"fig11-point":     KindParcel,
		"hybrid-baseline": KindHybrid,
		"kernel-gups":     KindStudy1,
	} {
		if got := MustFind(name).Kind(); got != want {
			t.Errorf("%s: kind %v, want %v", name, got, want)
		}
	}
}

func TestBackendSupportsMatrix(t *testing.T) {
	// Each kind maps to a fixed backend set; sim supports every
	// statistical scenario, the machine backend every execution-driven
	// one (with the analytic closed form claiming the ping program too).
	want := map[Kind][]string{
		KindStudy1: {"analytic", "sim"},
		KindParcel: {"queueing", "sim"},
		KindHybrid: {"queueing", "sim", "hybrid"},
	}
	for _, s := range Presets() {
		expect := want[s.Kind()]
		if s.Kind() == KindMachine {
			expect = []string{"machine"}
			if s.Workload.Program == "ping" {
				expect = []string{"analytic", "machine"}
			}
		}
		var names []string
		for _, b := range SupportingBackends(s) {
			names = append(names, b.Name())
		}
		if !reflect.DeepEqual(names, expect) {
			t.Errorf("%s (%s): supporting backends %v, want %v", s.Name, s.Kind(), names, expect)
		}
	}
}

func TestHostParamsMatchesTable1(t *testing.T) {
	// The paper-baseline preset must map onto exactly the Table 1 default
	// parameter struct (with %WL and N applied): the studies rely on it.
	s := MustFind("paper-baseline")
	p, err := s.HostParams(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := hostpim.DefaultParams()
	want.PctWL = 0.5
	want.N = 32
	if p != want {
		t.Errorf("HostParams = %+v, want %+v", p, want)
	}
}

func TestParcelParamsMatchesStudy2Defaults(t *testing.T) {
	s := MustFind("fig11-point")
	p, err := s.ParcelParams(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	want := parcelsys.DefaultParams()
	want.Seed = 7
	if !reflect.DeepEqual(p, want) {
		t.Errorf("ParcelParams = %+v, want %+v", p, want)
	}
}

func TestParcelParamsHybridCycleMapping(t *testing.T) {
	// In a hybrid scenario the parcel workload is rescaled to HWP-cycle
	// units: the expected busy time between memory accesses must equal
	// the Saavedra-Barrera run-length term eOps·TLcycle, with MemCycles
	// equal to TML.
	s := MustFind("hybrid-baseline")
	p, err := s.ParcelParams(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	eCycles := (1 - 0.3) / 0.3 * 5 // Table 1 mix and TLcycle
	gotE := (1 - p.MixMem) / p.MixMem
	if math.Abs(gotE-eCycles) > 1e-9 {
		t.Errorf("useful cycles per access = %g, want %g", gotE, eCycles)
	}
	if p.MemCycles != 30 {
		t.Errorf("MemCycles = %g, want TML = 30", p.MemCycles)
	}
}

func TestQuickClampsOnlyDown(t *testing.T) {
	s := MustFind("paper-baseline")
	p, err := s.HostParams(Config{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.W != quickMaxW {
		t.Errorf("quick W = %g, want %g", p.W, quickMaxW)
	}
	s.Workload.W = 5000 // already below the clamp
	p, err = s.HostParams(Config{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.W != 5000 {
		t.Errorf("quick W = %g, want 5000 (clamp must never raise)", p.W)
	}
}

func TestKernelFitting(t *testing.T) {
	cfg := Config{Seed: 2004, Quick: true}
	// Low-locality kernels land on the PIM array with the kernel's op
	// weight; high-locality kernels stay on the host with %WL = 0.
	for kernel, wantPIM := range map[string]bool{
		"stream":        true,
		"gups":          true,
		"pointer-chase": true,
		"stencil":       false,
		"histogram":     false,
	} {
		p, err := MustFind("kernel-" + kernel).HostParams(cfg)
		if err != nil {
			t.Fatalf("%s: %v", kernel, err)
		}
		if wantPIM && p.PctWL != 0.6 {
			t.Errorf("%s: PctWL = %g, want kernel weight 0.6", kernel, p.PctWL)
		}
		if !wantPIM && p.PctWL != 0 {
			t.Errorf("%s: PctWL = %g, want 0 (host-resident)", kernel, p.PctWL)
		}
	}
}

func TestUnknownKernelRejected(t *testing.T) {
	s := MustFind("paper-baseline")
	s.Workload.Kernel = "fibonacci"
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "unknown kernel") {
		t.Errorf("want unknown-kernel error, got %v", err)
	}
}

func TestRunUnsupportedBackend(t *testing.T) {
	if _, err := Run(MustFind("paper-baseline"), "queueing", Config{Seed: 1}); err == nil {
		t.Error("queueing on a study-1 scenario must be rejected")
	}
	if _, err := Run(MustFind("paper-baseline"), "nope", Config{Seed: 1}); err == nil {
		t.Error("unknown backend must be rejected")
	}
}

func TestAnalyticMatchesHostpimDirectly(t *testing.T) {
	s := MustFind("paper-baseline")
	r, err := Run(s, "analytic", Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := s.HostParams(Config{Seed: 1})
	want, err := hostpim.Analytic(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics[MetricGain] != want.Gain || r.Metrics[MetricTotal] != want.Total {
		t.Errorf("analytic backend diverges from hostpim.Analytic: %+v vs %+v", r.Metrics, want)
	}
}

func TestCrossValidateAllPresetsQuick(t *testing.T) {
	cfg := Config{Seed: 2004, Quick: true}
	for _, s := range Presets() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			results, ags, err := CrossValidate(s, cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Machine presets without an analytic counterpart run on the
			// machine backend alone: nothing to compare, nothing to fail.
			soloMachine := s.Kind() == KindMachine && s.Workload.Program != "ping"
			if !soloMachine {
				if len(results) < 2 {
					t.Fatalf("only %d supporting backends; cross-validation needs 2", len(results))
				}
				if len(ags) == 0 {
					t.Fatal("no shared checked metrics between supporting backends")
				}
			}
			for _, a := range Disagreements(ags) {
				t.Errorf("%s: %s %s=%.4g vs %s=%.4g diff %.4g > tol %.4g",
					s.Name, a.Metric, a.A, a.ValA, a.B, a.ValB, a.Diff, a.Tol)
			}
		})
	}
}

func TestCrossValidateDeterministic(t *testing.T) {
	cfg := Config{Seed: 99, Quick: true}
	for _, name := range []string{"fig11-point", "hybrid-baseline", "kernel-gups"} {
		s := MustFind(name)
		r1, a1, err := CrossValidate(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r2, a2, err := CrossValidate(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r1, r2) {
			t.Errorf("%s: results differ between identical runs", name)
		}
		if !reflect.DeepEqual(a1, a2) {
			t.Errorf("%s: agreements differ between identical runs", name)
		}
	}
}

func TestSetGetField(t *testing.T) {
	s := MustFind("fig11-point")
	if err := SetField(&s, "parallelism", 16); err != nil {
		t.Fatal(err)
	}
	if s.Workload.Parallelism != 16 {
		t.Errorf("parallelism = %d after SetField", s.Workload.Parallelism)
	}
	if err := SetField(&s, "overlap", 1); err != nil {
		t.Fatal(err)
	}
	if !s.Overlap {
		t.Error("overlap not set by non-zero value")
	}
	v, err := GetField(s, "latency")
	if err != nil || v != 200 {
		t.Errorf("GetField(latency) = %g, %v", v, err)
	}
	if err := SetField(&s, "warp-drive", 1); err == nil {
		t.Error("unknown field must be rejected")
	}
	// Every registered field must round-trip.
	for _, f := range Fields() {
		if err := SetField(&s, f.Name, f.Get(s)); err != nil {
			t.Errorf("field %s does not round-trip: %v", f.Name, err)
		}
	}
}

func TestQueueingBackendSaturates(t *testing.T) {
	// With overwhelming parallelism the MVA utilization must approach 1
	// and the ratio must approach the saturation bound's neighbourhood.
	s := MustFind("latency-extreme")
	s.Workload.Parallelism = 512
	r, err := Run(s, "queueing", Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics[MetricEfficiency] < 0.99 {
		t.Errorf("efficiency = %g at parallelism 512, want ~1", r.Metrics[MetricEfficiency])
	}
	if r.Metrics[MetricTestIdle] > 0.01 {
		t.Errorf("test idle = %g at parallelism 512", r.Metrics[MetricTestIdle])
	}
}

func TestValidateRejects(t *testing.T) {
	base := MustFind("fig11-point")
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"zero nodes", func(s *Scenario) { s.Machine.N = 0 }},
		{"negative latency", func(s *Scenario) { s.Machine.Latency = -1 }},
		{"pct out of range", func(s *Scenario) { s.Workload.PctWL = 1.5 }},
		{"zero parallelism with remote", func(s *Scenario) { s.Workload.Parallelism = 0 }},
		{"zero horizon with remote", func(s *Scenario) { s.Workload.Horizon = 0 }},
		{"zero mix", func(s *Scenario) { s.Workload.MixLS = 0 }},
		{"empty name", func(s *Scenario) { s.Name = "" }},
	}
	for _, c := range cases {
		s := base
		c.mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid scenario", c.name)
		}
	}
}
