package scenario

// Scenario-level face of the partitioned sim kernel's determinism
// guarantee, mirroring TestMachineRunParallelInvariant for the sim
// backend: study-1 metrics are bit-identical for every RunParallel value
// (serial included), and parcel metrics are bit-identical across every
// partitioned worker count >= 1.

import (
	"reflect"
	"testing"
)

func TestSimStudy1RunParallelInvariant(t *testing.T) {
	cfg := Config{Seed: 2004, Quick: true}
	for _, name := range []string{"paper-baseline", "balanced-overlap"} {
		s := MustFind(name)
		s.Machine.RunParallel = 0
		want, err := Run(s, "sim", cfg)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		for _, p := range []int{1, 3, 8} {
			s.Machine.RunParallel = p
			got, err := Run(s, "sim", cfg)
			if err != nil {
				t.Fatalf("%s p=%d: %v", name, p, err)
			}
			if !reflect.DeepEqual(want.Metrics, got.Metrics) {
				t.Errorf("%s: RunParallel=%d leaks into metrics:\nserial:   %v\nparallel: %v",
					name, p, want.Metrics, got.Metrics)
			}
		}
	}
}

func TestSimParcelRunParallelInvariant(t *testing.T) {
	// The partitioned parcelsys formulation draws from per-parcel routing
	// streams, so RunParallel 0 (the legacy serial formulation) is a
	// different — equally valid — sample path; the invariant starts at 1.
	cfg := Config{Seed: 2004, Quick: true}
	names := []string{"fig11-point", "parcel-scale-1k"}
	if testing.Short() {
		// The 1024-node run is the CI determinism step's job (no -short);
		// the race-short pass keeps the small point.
		names = names[:1]
	}
	for _, name := range names {
		s := MustFind(name)
		s.Machine.RunParallel = 1
		want, err := Run(s, "sim", cfg)
		if err != nil {
			t.Fatalf("%s p=1: %v", name, err)
		}
		for _, p := range []int{2, 4} {
			s.Machine.RunParallel = p
			got, err := Run(s, "sim", cfg)
			if err != nil {
				t.Fatalf("%s p=%d: %v", name, p, err)
			}
			if !reflect.DeepEqual(want.Metrics, got.Metrics) {
				t.Errorf("%s: RunParallel=%d leaks into metrics:\np=1: %v\np=%d: %v",
					name, p, want.Metrics, p, got.Metrics)
			}
		}
	}
}
