package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"time"
)

// This file is the network-facing wire format: a Spec is a JSON request
// ("run this preset, with these field overrides, on this backend") that
// pimserve accepts from untrusted clients. Decoding and resolution are
// hardened accordingly — unknown JSON keys, unknown presets/fields/
// backends, non-finite values, and resource-exhausting parameter points
// are all rejected with a client error before any work is admitted.
// FuzzScenarioSpec holds the no-panic/no-accept-garbage line.

// Spec is one scenario-evaluation request. The sweepable Field registry
// doubles as the override vocabulary, so everything pimsweep can sweep a
// client can request.
type Spec struct {
	// Preset names the base scenario (see Presets / Find).
	Preset string `json:"preset"`
	// Backend selects the model ("analytic", "queueing", "sim", "hybrid",
	// "machine"); empty picks the first backend supporting the resolved
	// scenario.
	Backend string `json:"backend,omitempty"`
	// Fields overrides named scenario knobs (SetField names) on top of
	// the preset.
	Fields map[string]float64 `json:"fields,omitempty"`
	// Seed drives the run's stochastic draws (0 is a valid seed).
	Seed uint64 `json:"seed,omitempty"`
	// Quick applies the scenario layer's quick-mode clamps.
	Quick bool `json:"quick,omitempty"`
	// Replications asks for N engine replicates (0 = 1).
	Replications int `json:"replications,omitempty"`
	// TimeoutMS is the client's per-request deadline budget in
	// milliseconds (0 = server default; the server clamps to its maximum).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// DecodeSpec parses a JSON spec strictly: unknown keys and trailing data
// are errors, so a typo'd field name can never silently run the preset
// unmodified.
func DecodeSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return Spec{}, fmt.Errorf("scenario: bad spec: %w", err)
	}
	// A second value (or any non-whitespace tail, JSON or not) means the
	// body was not one JSON object; only a clean EOF is acceptable.
	if _, err := dec.Token(); err != io.EOF {
		return Spec{}, fmt.Errorf("scenario: bad spec: trailing data after the JSON object")
	}
	return sp, nil
}

// SpecLimits caps the resources one resolved spec may claim, so a single
// network request cannot allocate unbounded memory (machine VMs allocate
// N × MemWords words up front) or queue unbounded work. Zero or negative
// caps mean unlimited; DefaultSpecLimits admits every named preset with
// room to spare.
type SpecLimits struct {
	// MaxNodes caps Machine.N.
	MaxNodes int
	// MaxMemWords caps the per-node VM memory of machine scenarios, in
	// 64-bit words (the resolved size: a zero MemWords counts as the
	// 16384-word default).
	MaxMemWords int
	// MaxTotalMemWords caps N × per-node words for machine scenarios —
	// the actual allocation a request triggers.
	MaxTotalMemWords int
	// MaxUpdates caps the machine-program per-thread work parameter.
	MaxUpdates int
	// MaxParallelism caps Workload.Parallelism and Machine.RunParallel.
	MaxParallelism int
	// MaxReplications caps Spec.Replications.
	MaxReplications int
	// MaxW caps Workload.W (total modeled operations).
	MaxW float64
	// MaxHorizon caps Workload.Horizon (simulated cycles).
	MaxHorizon float64
}

// DefaultSpecLimits returns the serving defaults: generous enough for
// every preset (scale-1k's N=1024 / W=1e8, machine-gups-256's 256-node
// VM), tight enough that no single spec can allocate more than ~¼ GiB or
// request a multi-hour point.
func DefaultSpecLimits() SpecLimits {
	return SpecLimits{
		MaxNodes:         4096,
		MaxMemWords:      1 << 21, // 16 MiB per node
		MaxTotalMemWords: 1 << 25, // 256 MiB per request
		MaxUpdates:       1 << 20,
		MaxParallelism:   4096,
		MaxReplications:  64,
		MaxW:             1e12,
		MaxHorizon:       1e9,
	}
}

// Resolved is a fully validated, admitted spec: the scenario with every
// override applied, the concrete backend, and the run parameters.
type Resolved struct {
	Scenario     Scenario
	Backend      string
	Seed         uint64
	Quick        bool
	Replications int
	// Timeout is the client's requested deadline (0 = server default).
	Timeout time.Duration
}

// Resolve applies the spec to its preset, validates the result, and
// enforces the limits. Every rejection is a client error: the message
// names the offending knob.
func (sp Spec) Resolve(lim SpecLimits) (Resolved, error) {
	s, err := Find(sp.Preset)
	if err != nil {
		return Resolved{}, err
	}
	// Deterministic application order (and error choice) regardless of
	// map iteration.
	names := make([]string, 0, len(sp.Fields))
	for name := range sp.Fields {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := sp.Fields[name]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Resolved{}, fmt.Errorf("scenario: field %q = %v is not finite", name, v)
		}
		// Integer-typed knobs truncate through int(v); a value beyond
		// int64 range would be implementation-defined, so reject it here
		// rather than trust the conversion.
		if v > math.MaxInt64 || v < math.MinInt64 {
			return Resolved{}, fmt.Errorf("scenario: field %q = %g out of range", name, v)
		}
		if err := SetField(&s, name, v); err != nil {
			return Resolved{}, err
		}
	}
	if err := s.Validate(); err != nil {
		return Resolved{}, err
	}
	if err := checkLimits(s, lim); err != nil {
		return Resolved{}, err
	}

	backend := sp.Backend
	if backend == "" {
		supporting := SupportingBackends(s)
		if len(supporting) == 0 {
			return Resolved{}, fmt.Errorf("scenario: no backend supports %s", s.Name)
		}
		backend = supporting[0].Name()
	} else {
		b, err := FindBackend(backend)
		if err != nil {
			return Resolved{}, err
		}
		if !b.Supports(s) {
			return Resolved{}, fmt.Errorf("scenario: backend %s does not support %s (%s)",
				backend, s.Name, s.Kind())
		}
	}

	reps := sp.Replications
	switch {
	case reps < 0:
		return Resolved{}, fmt.Errorf("scenario: replications = %d (want >= 0)", reps)
	case reps == 0:
		reps = 1
	case lim.MaxReplications > 0 && reps > lim.MaxReplications:
		return Resolved{}, fmt.Errorf("scenario: replications = %d exceeds the %d cap", reps, lim.MaxReplications)
	}
	// A day-long bound keeps the ms→ns conversion far from overflow; the
	// server clamps way below it anyway.
	const maxTimeoutMS = 24 * 60 * 60 * 1000
	if sp.TimeoutMS < 0 || sp.TimeoutMS > maxTimeoutMS {
		return Resolved{}, fmt.Errorf("scenario: timeout_ms = %d out of [0, %d]", sp.TimeoutMS, maxTimeoutMS)
	}
	return Resolved{
		Scenario:     s,
		Backend:      backend,
		Seed:         sp.Seed,
		Quick:        sp.Quick,
		Replications: reps,
		Timeout:      time.Duration(sp.TimeoutMS) * time.Millisecond,
	}, nil
}

// checkLimits enforces the resource caps on a validated scenario.
func checkLimits(s Scenario, lim SpecLimits) error {
	m, w := s.Machine, s.Workload
	if lim.MaxNodes > 0 && m.N > lim.MaxNodes {
		return fmt.Errorf("scenario: N = %d exceeds the %d-node cap", m.N, lim.MaxNodes)
	}
	if lim.MaxParallelism > 0 && w.Parallelism > lim.MaxParallelism {
		return fmt.Errorf("scenario: Parallelism = %d exceeds the %d cap", w.Parallelism, lim.MaxParallelism)
	}
	if lim.MaxParallelism > 0 && m.RunParallel > lim.MaxParallelism {
		return fmt.Errorf("scenario: RunParallel = %d exceeds the %d cap", m.RunParallel, lim.MaxParallelism)
	}
	if lim.MaxW > 0 && w.W > lim.MaxW {
		return fmt.Errorf("scenario: W = %g exceeds the %g cap", w.W, lim.MaxW)
	}
	if lim.MaxHorizon > 0 && w.Horizon > lim.MaxHorizon {
		return fmt.Errorf("scenario: Horizon = %g exceeds the %g cap", w.Horizon, lim.MaxHorizon)
	}
	if s.Kind() == KindMachine {
		words := s.machineMemWords()
		if lim.MaxMemWords > 0 && words > lim.MaxMemWords {
			return fmt.Errorf("scenario: MemWords = %d exceeds the %d-word cap", words, lim.MaxMemWords)
		}
		if lim.MaxTotalMemWords > 0 && words > lim.MaxTotalMemWords/m.N {
			return fmt.Errorf("scenario: %d nodes x %d words exceeds the %d-word total cap",
				m.N, words, lim.MaxTotalMemWords)
		}
		if lim.MaxUpdates > 0 && w.Updates > lim.MaxUpdates {
			return fmt.Errorf("scenario: Updates = %d exceeds the %d cap", w.Updates, lim.MaxUpdates)
		}
	}
	return nil
}

// Key returns the canonical identity of the resolved run: two specs that
// resolve to the same key produce byte-identical results, so the serving
// layer single-flights and caches on it. The client's timeout is
// deliberately excluded — it shapes how long a caller waits, never what
// the run computes.
func (r Resolved) Key() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s|%s|seed=%d|quick=%t|reps=%d",
		r.Scenario.Name, r.Backend, r.Seed, r.Quick, r.Replications)
	// The scenario is preset+overrides; serializing every sweepable field
	// (not just the overridden ones) keeps the key honest even if two
	// presets ever alias.
	for _, f := range Fields() {
		fmt.Fprintf(&b, "|%s=%s", f.Name, strconv.FormatFloat(f.Get(r.Scenario), 'g', -1, 64))
	}
	return b.String()
}
