package scenario

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestDecodeSpecStrict(t *testing.T) {
	cases := []struct {
		name, body string
		wantErr    string
	}{
		{"minimal", `{"preset":"paper-baseline"}`, ""},
		{"full", `{"preset":"machine-gups","backend":"machine","fields":{"nodes":16},"seed":7,"quick":true,"replications":3,"timeout_ms":500}`, ""},
		{"empty body", ``, "bad spec"},
		{"not json", `preset=paper-baseline`, "bad spec"},
		{"unknown key", `{"preset":"paper-baseline","presett":"x"}`, "bad spec"},
		{"trailing garbage", `{"preset":"paper-baseline"} {"preset":"x"}`, "trailing data"},
		{"trailing token", `{"preset":"paper-baseline"} 1`, "trailing data"},
		{"wrong type", `{"preset":7}`, "bad spec"},
		{"array body", `[{"preset":"paper-baseline"}]`, "bad spec"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := DecodeSpec([]byte(c.body))
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("DecodeSpec(%s): %v", c.body, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("DecodeSpec(%s) err = %v, want %q", c.body, err, c.wantErr)
			}
		})
	}
}

func TestResolveAppliesFieldsAndPicksBackend(t *testing.T) {
	sp := Spec{
		Preset:    "machine-gups",
		Fields:    map[string]float64{"nodes": 16, "updates": 32},
		Seed:      9,
		Quick:     true,
		TimeoutMS: 250,
	}
	r, err := sp.Resolve(DefaultSpecLimits())
	if err != nil {
		t.Fatal(err)
	}
	if r.Scenario.Machine.N != 16 || r.Scenario.Workload.Updates != 32 {
		t.Errorf("overrides not applied: N=%d Updates=%d",
			r.Scenario.Machine.N, r.Scenario.Workload.Updates)
	}
	if r.Backend != "machine" {
		t.Errorf("Backend = %q, want the machine backend", r.Backend)
	}
	if r.Replications != 1 || r.Timeout != 250*time.Millisecond || r.Seed != 9 || !r.Quick {
		t.Errorf("run parameters wrong: %+v", r)
	}
}

func TestResolveRejections(t *testing.T) {
	lim := DefaultSpecLimits()
	cases := []struct {
		name    string
		sp      Spec
		wantErr string
	}{
		{"unknown preset", Spec{Preset: "nope"}, "unknown preset"},
		{"unknown field", Spec{Preset: "paper-baseline", Fields: map[string]float64{"bogus": 1}}, "unknown field"},
		{"unknown backend", Spec{Preset: "paper-baseline", Backend: "gpu"}, "unknown backend"},
		{"unsupporting backend", Spec{Preset: "paper-baseline", Backend: "machine"}, "does not support"},
		{"invalid point", Spec{Preset: "paper-baseline", Fields: map[string]float64{"pctwl": 2}}, "PctWL"},
		{"nan field", Spec{Preset: "paper-baseline", Fields: map[string]float64{"nodes": math.NaN()}}, "not finite"},
		{"inf field", Spec{Preset: "paper-baseline", Fields: map[string]float64{"w": math.Inf(1)}}, "not finite"},
		{"overflow field", Spec{Preset: "paper-baseline", Fields: map[string]float64{"nodes": 1e300}}, "out of range"},
		{"node cap", Spec{Preset: "paper-baseline", Fields: map[string]float64{"nodes": 1e5}}, "node cap"},
		{"memory cap", Spec{Preset: "machine-gups", Fields: map[string]float64{"memwords": 1 << 24}}, "word cap"},
		{"total memory cap", Spec{Preset: "machine-gups-256", Fields: map[string]float64{"memwords": 1 << 19}}, "total cap"},
		{"updates cap", Spec{Preset: "machine-gups", Fields: map[string]float64{"updates": 1 << 24}}, "cap"},
		{"negative reps", Spec{Preset: "paper-baseline", Replications: -1}, "replications"},
		{"reps cap", Spec{Preset: "paper-baseline", Replications: 1000}, "replications"},
		{"negative timeout", Spec{Preset: "paper-baseline", TimeoutMS: -5}, "timeout_ms"},
		{"huge timeout", Spec{Preset: "paper-baseline", TimeoutMS: 1 << 40}, "timeout_ms"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := c.sp.Resolve(lim); err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("Resolve err = %v, want %q", err, c.wantErr)
			}
		})
	}
}

func TestDefaultLimitsAdmitEveryPreset(t *testing.T) {
	// The serving defaults must never reject a named preset as shipped.
	lim := DefaultSpecLimits()
	for _, s := range Presets() {
		if _, err := (Spec{Preset: s.Name}).Resolve(lim); err != nil {
			t.Errorf("preset %s rejected by default limits: %v", s.Name, err)
		}
	}
}

func TestZeroLimitsAreUnlimited(t *testing.T) {
	sp := Spec{Preset: "paper-baseline", Fields: map[string]float64{"nodes": 1e6}, Replications: 500}
	if _, err := sp.Resolve(SpecLimits{}); err != nil {
		t.Fatalf("zero limits rejected: %v", err)
	}
}

func TestResolvedKey(t *testing.T) {
	lim := DefaultSpecLimits()
	a, err := Spec{Preset: "machine-gups", Fields: map[string]float64{"nodes": 16, "updates": 32}, Seed: 1}.Resolve(lim)
	if err != nil {
		t.Fatal(err)
	}
	// Same overrides, different map construction order: same key.
	b, err := Spec{Preset: "machine-gups", Fields: map[string]float64{"updates": 32, "nodes": 16}, Seed: 1}.Resolve(lim)
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() != b.Key() {
		t.Errorf("equivalent specs got different keys:\n%s\n%s", a.Key(), b.Key())
	}
	// Any run-shaping difference must change the key.
	variants := []Spec{
		{Preset: "machine-gups", Fields: map[string]float64{"nodes": 16, "updates": 32}, Seed: 2},
		{Preset: "machine-gups", Fields: map[string]float64{"nodes": 16, "updates": 64}, Seed: 1},
		{Preset: "machine-gups", Fields: map[string]float64{"nodes": 16, "updates": 32}, Seed: 1, Quick: true},
		{Preset: "machine-gups", Fields: map[string]float64{"nodes": 16, "updates": 32}, Seed: 1, Replications: 2},
	}
	for i, sp := range variants {
		v, err := sp.Resolve(lim)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if v.Key() == a.Key() {
			t.Errorf("variant %d collides with the base key", i)
		}
	}
	// The timeout must NOT change the key (deadlines never change results).
	c, err := Spec{Preset: "machine-gups", Fields: map[string]float64{"nodes": 16, "updates": 32}, Seed: 1, TimeoutMS: 123}.Resolve(lim)
	if err != nil {
		t.Fatal(err)
	}
	if c.Key() != a.Key() {
		t.Error("timeout leaked into the run key")
	}
}

func TestResolvedSpecRuns(t *testing.T) {
	// End to end: a resolved machine spec actually executes on its backend.
	r, err := Spec{Preset: "machine-gups", Fields: map[string]float64{"nodes": 4, "updates": 8}, Quick: true}.
		Resolve(DefaultSpecLimits())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(r.Scenario, r.Backend, Config{Seed: r.Seed, Quick: r.Quick})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics[MetricTotal] <= 0 {
		t.Errorf("no cycles reported: %+v", res.Metrics)
	}
}
