package scenario

import (
	"fmt"
	"math"
	"sort"
)

// tolerance describes how one metric is compared across backends.
type tolerance struct {
	// Tol is the allowed difference.
	Tol float64
	// Abs compares |a−b| directly instead of the symmetric relative
	// error — right for fractions near zero (idle, efficiency), where
	// relative error explodes without meaning.
	Abs bool
}

// defaultTolerances states how far two models of the same design point may
// legitimately disagree. Time-domain metrics compare relatively (the
// repo's accuracy experiment bounds analytic-vs-simulation at a few
// percent; 5% leaves headroom). The Fig. 11 ratio compares the exact MVA
// network against a simulation with non-exponential service and real
// destination contention, so it gets the widest relative band. Fractions
// compare absolutely. Metrics absent from this map (and from Scenario.Tol)
// are reported but never checked.
var defaultTolerances = map[string]tolerance{
	MetricGain:       {Tol: 0.05},
	MetricTotal:      {Tol: 0.05},
	MetricRelative:   {Tol: 0.05},
	MetricRatio:      {Tol: 0.35},
	MetricCtrlIdle:   {Tol: 0.10, Abs: true},
	MetricTestIdle:   {Tol: 0.15, Abs: true},
	MetricEfficiency: {Tol: 0.15, Abs: true},
}

// DefaultTolerances returns a copy of the default per-metric tolerances
// (the Tol values; whether a metric compares absolutely is fixed).
func DefaultTolerances() map[string]float64 {
	out := make(map[string]float64, len(defaultTolerances))
	for k, v := range defaultTolerances {
		out[k] = v.Tol
	}
	return out
}

// toleranceFor resolves the scenario's tolerance for a metric; ok is false
// when the metric is not subject to agreement checks.
func toleranceFor(s Scenario, metric string) (tolerance, bool) {
	def, ok := defaultTolerances[metric]
	if t, o := s.Tol[metric]; o {
		return tolerance{Tol: t, Abs: def.Abs}, true
	}
	return def, ok
}

// Agreement is one pairwise cross-backend comparison of one metric.
type Agreement struct {
	// Metric names the compared metric.
	Metric string
	// A and B name the backends; ValA and ValB are their values.
	A, B       string
	ValA, ValB float64
	// Diff is the measured difference: |a−b| when Abs, else the
	// symmetric relative error |a−b|/max(|a|,|b|).
	Diff float64
	// Abs reports the comparison mode.
	Abs bool
	// Tol is the allowed difference; Pass is Diff <= Tol.
	Tol  float64
	Pass bool
}

// CrossValidate runs the scenario on every supporting backend and compares
// each shared metric between each backend pair against the stated
// tolerances. Results come back in backend presentation order and
// agreements sorted by (metric, A, B), so output built from them is
// deterministic.
func CrossValidate(s Scenario, cfg Config) ([]Result, []Agreement, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	sup := SupportingBackends(s)
	if len(sup) == 0 {
		return nil, nil, fmt.Errorf("scenario: no backend supports %s", s.Name)
	}
	results := make([]Result, 0, len(sup))
	for _, b := range sup {
		r, err := b.Run(s, cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("scenario: %s on %s: %w", s.Name, b.Name(), err)
		}
		results = append(results, r)
	}
	var ags []Agreement
	for i := 0; i < len(results); i++ {
		for j := i + 1; j < len(results); j++ {
			ags = append(ags, compare(s, results[i], results[j])...)
		}
	}
	sort.Slice(ags, func(i, j int) bool {
		if ags[i].Metric != ags[j].Metric {
			return ags[i].Metric < ags[j].Metric
		}
		if ags[i].A != ags[j].A {
			return ags[i].A < ags[j].A
		}
		return ags[i].B < ags[j].B
	})
	return results, ags, nil
}

// compare produces agreements for the metrics two results share.
func compare(s Scenario, a, b Result) []Agreement {
	var out []Agreement
	for _, m := range a.MetricKeys() {
		vb, ok := b.Metrics[m]
		if !ok {
			continue
		}
		tol, checked := toleranceFor(s, m)
		if !checked {
			continue
		}
		va := a.Metrics[m]
		diff := relErr(va, vb)
		if tol.Abs {
			diff = math.Abs(va - vb)
		}
		out = append(out, Agreement{
			Metric: m, A: a.Backend, B: b.Backend,
			ValA: va, ValB: vb,
			Diff: diff, Abs: tol.Abs, Tol: tol.Tol,
			Pass: diff <= tol.Tol,
		})
	}
	return out
}

// Disagreements returns the failed agreements.
func Disagreements(ags []Agreement) []Agreement {
	var out []Agreement
	for _, a := range ags {
		if !a.Pass {
			out = append(out, a)
		}
	}
	return out
}
