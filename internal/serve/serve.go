// Package serve is the daemon layer: an HTTP/JSON front end that accepts
// scenario specs (the scenario.Spec wire format) from untrusted clients
// and evaluates them through the engine on any registered backend.
//
// The design goal is graceful degradation under overload, in the spirit of
// the paper's interest in saturating shared resources: admission is a
// bounded queue with load shedding (429 + Retry-After) rather than
// unbounded goroutines, every request carries a deadline that propagates
// into the engine's RunTimeout watchdog (and from there into the machine
// backend's cooperative cancellation), identical in-flight specs are
// coalesced into a single run, and results flow through a sharded LRU so
// repeat specs cost one map lookup. A panicking backend fails one request,
// never the daemon. Drain stops intake, finishes (or deadlines-out) the
// admitted work, and returns — the pimserve binary calls it on SIGTERM.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/scenario"
)

// Options configures a Server. The zero value is usable: every field has a
// serving-grade default.
type Options struct {
	// Limits caps what one spec may request (nil = scenario defaults).
	Limits *scenario.SpecLimits
	// QueueDepth bounds the admission queue; a request arriving with the
	// queue full is shed with 429 (default 64).
	QueueDepth int
	// Workers is how many runs execute concurrently (default GOMAXPROCS).
	Workers int
	// DefaultTimeout applies when a spec carries no timeout_ms
	// (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-requested deadlines (default 5m).
	MaxTimeout time.Duration
	// RetryAfter is the hint sent with 429/503 responses (default 1s).
	RetryAfter time.Duration
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// CacheShards and CacheEntriesPerShard size the shared result cache
	// (defaults: engine.DefaultCacheShards, engine defaults per shard).
	CacheShards, CacheEntriesPerShard int
}

func (o Options) withDefaults() Options {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 5 * time.Minute
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	return o
}

// RunResponse is the JSON body for a completed run (and, with only Error
// set, for failures).
type RunResponse struct {
	Key          string                      `json:"key,omitempty"`
	Preset       string                      `json:"preset,omitempty"`
	Backend      string                      `json:"backend,omitempty"`
	Seed         uint64                      `json:"seed"`
	Quick        bool                        `json:"quick,omitempty"`
	Replications int                         `json:"replications,omitempty"`
	Metrics      map[string]float64          `json:"metrics,omitempty"`
	Aggregates   map[string]engine.Aggregate `json:"aggregates,omitempty"`
	FromCache    bool                        `json:"from_cache,omitempty"`
	// Coalesced marks a response served by joining another client's
	// identical in-flight run.
	Coalesced bool    `json:"coalesced,omitempty"`
	Error     string  `json:"error,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
}

// Snapshot is the /metrics payload: monotonic request counters plus the
// result cache's own counters.
type Snapshot struct {
	Received  int64 `json:"received"`  // requests hitting /run
	Rejected  int64 `json:"rejected"`  // bad specs (4xx before admission)
	Accepted  int64 `json:"accepted"`  // flights admitted to the queue
	Shed      int64 `json:"shed"`      // flights refused by the full queue
	Coalesced int64 `json:"coalesced"` // requests joined onto another flight
	Deadlines int64 `json:"deadlines"` // requests that timed out (504)
	Panics    int64 `json:"panics"`    // backend panics converted to 500
	Completed int64 `json:"completed"` // flights finishing with a result
	Failed    int64 `json:"failed"`    // flights finishing with an error

	Draining bool              `json:"draining"`
	Queue    int               `json:"queue"`     // flights waiting right now
	QueueCap int               `json:"queue_cap"` // admission queue bound
	Cache    engine.CacheStats `json:"cache"`
}

// flight is one admitted run; coalesced requests wait on the same flight.
type flight struct {
	key     string
	r       scenario.Resolved
	ctx     context.Context // carries the initiator's deadline
	cancel  context.CancelFunc
	started time.Time
	done    chan struct{} // closed once status/resp are set
	status  int
	resp    RunResponse
}

// Server routes spec requests through a bounded queue into the engine. It
// is safe for concurrent use; construct with New.
type Server struct {
	opts   Options
	limits scenario.SpecLimits
	cache  *engine.ShardedCache
	queue  chan *flight

	mu       sync.Mutex // guards draining + flights
	draining bool
	flights  map[string]*flight

	inflight  sync.WaitGroup // admitted, unfinished flights
	workers   sync.WaitGroup
	closeOnce sync.Once // closes queue after a successful drain

	received, rejected, accepted, shed atomic.Int64
	coalesced, deadlines, panics       atomic.Int64
	completed, failed                  atomic.Int64

	// run executes one resolved spec; a test seam — the default engineRun
	// drives the real engine and backends.
	run func(ctx context.Context, r scenario.Resolved) (engine.Result, error)
}

// New builds a Server and starts its worker pool. Call Drain to stop.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:    opts,
		cache:   engine.NewShardedCache(opts.CacheShards, opts.CacheEntriesPerShard),
		queue:   make(chan *flight, opts.QueueDepth),
		flights: make(map[string]*flight),
	}
	if opts.Limits != nil {
		s.limits = *opts.Limits
	} else {
		s.limits = scenario.DefaultSpecLimits()
	}
	s.run = s.engineRun
	s.workers.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go func() {
			defer s.workers.Done()
			for fl := range s.queue {
				s.runFlight(fl)
			}
		}()
	}
	return s
}

// Handler returns the daemon's HTTP surface: POST /run, GET /healthz,
// GET /readyz, GET /metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.drainingNow() {
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, "draining\n")
			return
		}
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ready\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, s.Metrics())
	})
	// Panic recovery outermost: a panic escaping any handler (including a
	// run panic surfacing through response rendering) fails the request,
	// not the process.
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.panics.Add(1)
				writeJSON(w, http.StatusInternalServerError,
					RunResponse{Error: fmt.Sprintf("internal panic: %v", v)})
			}
		}()
		mux.ServeHTTP(w, r)
	})
}

// Metrics snapshots the server counters.
func (s *Server) Metrics() Snapshot {
	return Snapshot{
		Received:  s.received.Load(),
		Rejected:  s.rejected.Load(),
		Accepted:  s.accepted.Load(),
		Shed:      s.shed.Load(),
		Coalesced: s.coalesced.Load(),
		Deadlines: s.deadlines.Load(),
		Panics:    s.panics.Load(),
		Completed: s.completed.Load(),
		Failed:    s.failed.Load(),
		Draining:  s.drainingNow(),
		Queue:     len(s.queue),
		QueueCap:  cap(s.queue),
		Cache:     s.cache.Stats(),
	}
}

// CacheStats exposes the shared result cache's counters.
func (s *Server) CacheStats() engine.CacheStats { return s.cache.Stats() }

// Drain stops admitting work and waits for the admitted flights to finish
// (each is bounded by its own deadline). It returns ctx's error if the
// wait outlives ctx, nil on a clean drain. After a clean drain the worker
// pool has exited; Drain is safe to call more than once.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted with work in flight: %w", ctx.Err())
	case <-done:
	}
	// All admitted flights finished and no new ones can be admitted, so
	// the queue is empty forever: release the workers. Once guards
	// repeated Drain calls (including a retry after an interrupted one).
	s.closeOnce.Do(func() { close(s.queue) })
	s.workers.Wait()
	return nil
}

func (s *Server) drainingNow() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.received.Add(1)
	if r.Method != http.MethodPost {
		s.rejected.Add(1)
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, RunResponse{Error: "POST a scenario spec"})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err != nil {
		s.rejected.Add(1)
		writeJSON(w, http.StatusBadRequest, RunResponse{Error: "unreadable body: " + err.Error()})
		return
	}
	sp, err := scenario.DecodeSpec(body)
	if err != nil {
		s.rejected.Add(1)
		writeJSON(w, http.StatusBadRequest, RunResponse{Error: err.Error()})
		return
	}
	res, err := sp.Resolve(s.limits)
	if err != nil {
		s.rejected.Add(1)
		writeJSON(w, http.StatusBadRequest, RunResponse{Error: err.Error()})
		return
	}

	timeout := res.Timeout
	if timeout <= 0 {
		timeout = s.opts.DefaultTimeout
	}
	if timeout > s.opts.MaxTimeout {
		timeout = s.opts.MaxTimeout
	}
	// The waiter's clock: tied to the client connection, so a dropped
	// caller stops waiting immediately.
	waitCtx, cancelWait := context.WithTimeout(r.Context(), timeout)
	defer cancelWait()

	key := res.Key()
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.retryLater(w, http.StatusServiceUnavailable, "draining")
		return
	}
	if fl, ok := s.flights[key]; ok {
		s.mu.Unlock()
		s.coalesced.Add(1)
		s.await(w, waitCtx, fl, true)
		return
	}
	// The flight's own clock is detached from the initiating connection:
	// coalesced waiters may outlive the initiator, and a result computed
	// anyway is a cache entry worth keeping.
	flCtx, flCancel := context.WithTimeout(context.Background(), timeout)
	fl := &flight{
		key: key, r: res,
		ctx: flCtx, cancel: flCancel,
		started: time.Now(),
		done:    make(chan struct{}),
	}
	s.flights[key] = fl
	s.inflight.Add(1)
	s.mu.Unlock()

	select {
	case s.queue <- fl:
		s.accepted.Add(1)
	default:
		// Queue full: shed. Finishing the flight (rather than only
		// erroring this request) also answers anyone who coalesced onto
		// it between the map insert and now.
		s.shed.Add(1)
		s.finish(fl, http.StatusTooManyRequests, RunResponse{Error: "overloaded: admission queue full"})
	}
	s.await(w, waitCtx, fl, false)
}

// await blocks until the flight completes or the waiter's own deadline
// expires, then writes the response.
func (s *Server) await(w http.ResponseWriter, ctx context.Context, fl *flight, joined bool) {
	select {
	case <-fl.done:
		resp := fl.resp
		resp.Coalesced = joined
		if fl.status == http.StatusTooManyRequests || fl.status == http.StatusServiceUnavailable {
			s.setRetryAfter(w)
		}
		writeJSON(w, fl.status, resp)
	case <-ctx.Done():
		// The flight keeps running (its own deadline bounds it); only this
		// waiter gives up.
		s.deadlines.Add(1)
		writeJSON(w, http.StatusGatewayTimeout,
			RunResponse{Key: fl.key, Error: "deadline exceeded waiting for the run"})
	}
}

// runFlight executes one admitted flight on a worker goroutine.
func (s *Server) runFlight(fl *flight) {
	defer func() {
		if v := recover(); v != nil {
			s.panics.Add(1)
			s.finish(fl, http.StatusInternalServerError,
				RunResponse{Key: fl.key, Error: fmt.Sprintf("backend panic: %v", v)})
		}
	}()
	if fl.ctx.Err() != nil {
		// Spent its whole budget queued; don't burn a worker on it.
		s.deadlines.Add(1)
		s.finish(fl, http.StatusGatewayTimeout,
			RunResponse{Key: fl.key, Error: "deadline exceeded before the run started"})
		return
	}
	result, err := s.run(fl.ctx, fl.r)
	elapsed := float64(time.Since(fl.started)) / float64(time.Millisecond)
	if err != nil || (result.Outcome == nil && result.Err != nil) {
		if err == nil {
			err = result.Err
		}
		status := http.StatusInternalServerError
		if fl.ctx.Err() != nil {
			s.deadlines.Add(1)
			status = http.StatusGatewayTimeout
		}
		s.finish(fl, status, RunResponse{Key: fl.key, Error: err.Error(), ElapsedMS: elapsed})
		return
	}
	resp := RunResponse{
		Key:          fl.key,
		Preset:       fl.r.Scenario.Name,
		Backend:      fl.r.Backend,
		Seed:         fl.r.Seed,
		Quick:        fl.r.Quick,
		Replications: fl.r.Replications,
		Metrics:      result.Outcome.Metrics,
		Aggregates:   finiteAggregates(result.Aggregates),
		FromCache:    result.FromCache,
		ElapsedMS:    elapsed,
	}
	if result.Err != nil {
		// Partial: some replicates failed but an aggregate over the
		// survivors exists. Still a result; the error rides along.
		resp.Error = result.Err.Error()
	}
	s.finish(fl, http.StatusOK, resp)
}

// finish publishes the flight's outcome to every waiter and retires it.
func (s *Server) finish(fl *flight, status int, resp RunResponse) {
	s.mu.Lock()
	delete(s.flights, fl.key)
	s.mu.Unlock()
	fl.status, fl.resp = status, resp
	close(fl.done)
	fl.cancel()
	if status == http.StatusOK {
		s.completed.Add(1)
	} else {
		s.failed.Add(1)
	}
	s.inflight.Done()
}

// engineRun is the production run path: a single-use engine around the
// shared result cache, with the request deadline as the replicate watchdog
// and the engine's cooperative-cancel chain armed from ctx.
func (s *Server) engineRun(ctx context.Context, r scenario.Resolved) (engine.Result, error) {
	remaining := time.Hour
	if dl, ok := ctx.Deadline(); ok {
		remaining = time.Until(dl)
		if remaining <= 0 {
			return engine.Result{}, context.DeadlineExceeded
		}
	}
	eng := engine.New(engine.Options{
		Workers:      1, // request-level concurrency is the server's worker pool
		Replications: r.Replications,
		RunTimeout:   remaining,
		Cache:        s.cache,
	})
	exp := &core.Experiment{
		ID:    r.Key(),
		Title: "serve: " + r.Scenario.Name + " on " + r.Backend,
		Run: func(cfg core.Config, _ io.Writer) (*core.Outcome, error) {
			sres, err := scenario.Run(r.Scenario, r.Backend, scenario.Config{
				Seed:   cfg.Seed,
				Quick:  cfg.Quick,
				Cancel: cfg.Cancel,
			})
			if err != nil {
				return nil, err
			}
			return &core.Outcome{Metrics: sres.Metrics}, nil
		},
	}
	cfg := core.Config{
		Seed:   r.Seed,
		Quick:  r.Quick,
		Cancel: func() bool { return ctx.Err() != nil },
	}
	results, err := eng.Run(cfg, []*core.Experiment{exp})
	if len(results) != 1 {
		return engine.Result{}, err
	}
	// Per-experiment failures live on the Result; the joined error would
	// double-report them.
	return results[0], nil
}

func (s *Server) retryLater(w http.ResponseWriter, status int, msg string) {
	s.setRetryAfter(w)
	writeJSON(w, status, RunResponse{Error: msg})
}

func (s *Server) setRetryAfter(w http.ResponseWriter) {
	secs := int(math.Ceil(s.opts.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

// finiteAggregates copies aggregates with non-finite CIs zeroed: a single
// replication has an infinite t-interval, which JSON cannot carry.
func finiteAggregates(in map[string]engine.Aggregate) map[string]engine.Aggregate {
	if in == nil {
		return nil
	}
	out := make(map[string]engine.Aggregate, len(in))
	for k, a := range in {
		if math.IsInf(a.CI, 0) || math.IsNaN(a.CI) {
			a.CI = 0
		}
		out[k] = a
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}
