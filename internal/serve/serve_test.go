package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/scenario"
)

// postSpec drives one /run request through the handler and decodes the
// response.
func postSpec(t *testing.T, h http.Handler, body string) (int, RunResponse, http.Header) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/run", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	var resp RunResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad response body %q: %v", w.Body.String(), err)
	}
	return w.Code, resp, w.Header()
}

func drain(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// okResult is a canned successful engine result for stubbed run paths.
func okResult() (engine.Result, error) {
	return engine.Result{
		Outcome: &core.Outcome{Metrics: map[string]float64{"total": 42}},
	}, nil
}

func TestRunEndToEnd(t *testing.T) {
	s := New(Options{})
	defer drain(t, s)
	h := s.Handler()

	const spec = `{"preset":"machine-gups","fields":{"nodes":4,"updates":8},"quick":true}`
	code, resp, _ := postSpec(t, h, spec)
	if code != http.StatusOK {
		t.Fatalf("status %d, error %q", code, resp.Error)
	}
	if resp.Metrics[scenario.MetricTotal] <= 0 {
		t.Errorf("no total metric: %+v", resp.Metrics)
	}
	if resp.Backend != "machine" || resp.FromCache || resp.Coalesced {
		t.Errorf("unexpected response shape: %+v", resp)
	}

	// The identical spec again must hit the shared result cache.
	code, resp2, _ := postSpec(t, h, spec)
	if code != http.StatusOK || !resp2.FromCache {
		t.Fatalf("second request: status %d FromCache %t", code, resp2.FromCache)
	}
	if resp2.Metrics[scenario.MetricTotal] != resp.Metrics[scenario.MetricTotal] {
		t.Error("cached metrics differ from the original run")
	}
	if st := s.CacheStats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("cache stats = %+v, want 1 hit / 1 miss", st)
	}

	m := s.Metrics()
	if m.Received != 2 || m.Accepted != 2 || m.Completed != 2 || m.Shed != 0 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestReplicatedRunAggregates(t *testing.T) {
	s := New(Options{})
	defer drain(t, s)
	code, resp, _ := postSpec(t, s.Handler(),
		`{"preset":"machine-gups","fields":{"nodes":4,"updates":8},"quick":true,"replications":3,"seed":5}`)
	if code != http.StatusOK {
		t.Fatalf("status %d, error %q", code, resp.Error)
	}
	ag, ok := resp.Aggregates[scenario.MetricTotal]
	if !ok || ag.N != 3 {
		t.Fatalf("aggregate = %+v (ok %t), want N = 3", ag, ok)
	}
}

func TestBadRequestsRejected(t *testing.T) {
	s := New(Options{})
	defer drain(t, s)
	h := s.Handler()

	cases := []struct {
		body string
		want int
	}{
		{`{"preset":"nope"}`, http.StatusBadRequest},
		{`{"preset":"paper-baseline","bogus":1}`, http.StatusBadRequest},
		{`{"preset":"paper-baseline"} extra`, http.StatusBadRequest},
		{`{"preset":"paper-baseline","fields":{"nodes":1e30}}`, http.StatusBadRequest},
		{``, http.StatusBadRequest},
	}
	for _, c := range cases {
		if code, resp, _ := postSpec(t, h, c.body); code != c.want || resp.Error == "" {
			t.Errorf("body %q: status %d error %q, want %d with an error", c.body, code, resp.Error, c.want)
		}
	}

	req := httptest.NewRequest(http.MethodGet, "/run", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /run status %d", w.Code)
	}
	if m := s.Metrics(); m.Rejected != int64(len(cases))+1 {
		t.Errorf("rejected = %d, want %d", m.Rejected, len(cases)+1)
	}
}

func TestSingleFlightCoalesces(t *testing.T) {
	s := New(Options{Workers: 2, QueueDepth: 16})
	defer drain(t, s)

	var runs atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	s.run = func(ctx context.Context, r scenario.Resolved) (engine.Result, error) {
		if runs.Add(1) == 1 {
			close(started)
		}
		<-release
		return okResult()
	}

	h := s.Handler()
	const spec = `{"preset":"paper-baseline","seed":1}`
	const n = 8
	codes := make([]int, n)
	resps := make([]RunResponse, n)
	var wg sync.WaitGroup

	// Lead request first, so its flight exists before the joiners arrive.
	wg.Add(1)
	go func() {
		defer wg.Done()
		codes[0], resps[0], _ = postSpec(t, h, spec)
	}()
	<-started
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], resps[i], _ = postSpec(t, h, spec)
		}(i)
	}
	// Joiners must register on the in-flight map before the release; poll
	// the coalesced counter rather than sleeping.
	deadline := time.Now().Add(10 * time.Second)
	for s.Metrics().Coalesced < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("coalesced = %d, want %d", s.Metrics().Coalesced, n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("run executed %d times for %d identical requests", got, n)
	}
	var joined int
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d error %q", i, codes[i], resps[i].Error)
		}
		if resps[i].Coalesced {
			joined++
		}
	}
	if joined != n-1 {
		t.Errorf("%d coalesced responses, want %d", joined, n-1)
	}
	if m := s.Metrics(); m.Coalesced != n-1 || m.Accepted != 1 || m.Completed != 1 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestOverloadShedsWithRetryAfter(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 1, RetryAfter: 3 * time.Second})
	defer drain(t, s)

	started := make(chan struct{})
	release := make(chan struct{})
	s.run = func(ctx context.Context, r scenario.Resolved) (engine.Result, error) {
		started <- struct{}{}
		<-release
		return okResult()
	}
	h := s.Handler()
	spec := func(seed int) string {
		return fmt.Sprintf(`{"preset":"paper-baseline","seed":%d}`, seed)
	}

	var wg sync.WaitGroup
	post := func(seed int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if code, resp, _ := postSpec(t, h, spec(seed)); code != http.StatusOK {
				t.Errorf("seed %d: status %d error %q", seed, code, resp.Error)
			}
		}()
	}
	post(1)
	<-started // the worker now holds flight 1; the queue is empty
	post(2)   // occupies the single queue slot
	for len(s.queue) == 0 {
		time.Sleep(time.Millisecond)
	}

	// Queue full: a distinct third spec must be shed, with a retry hint.
	code, resp, hdr := postSpec(t, h, spec(3))
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d error %q, want 429", code, resp.Error)
	}
	if hdr.Get("Retry-After") != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", hdr.Get("Retry-After"))
	}

	close(release)
	<-started // flight 2 starts once the worker frees up
	wg.Wait()

	if m := s.Metrics(); m.Shed != 1 || m.Accepted != 2 || m.Completed != 2 || m.Failed != 1 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestQueuedPastDeadlineGets504(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 4})
	defer drain(t, s)

	var runs atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	s.run = func(ctx context.Context, r scenario.Resolved) (engine.Result, error) {
		runs.Add(1)
		close(started)
		<-release
		return okResult()
	}
	h := s.Handler()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postSpec(t, h, `{"preset":"paper-baseline","seed":1}`)
	}()
	<-started

	// Queued behind the blocked worker with a 50ms budget: the waiter
	// times out (504), and when the worker finally reaches the flight it
	// discards it without running.
	code, resp, _ := postSpec(t, h, `{"preset":"paper-baseline","seed":2,"timeout_ms":50}`)
	if code != http.StatusGatewayTimeout || resp.Error == "" {
		t.Fatalf("status %d error %q, want 504", code, resp.Error)
	}

	close(release)
	wg.Wait()
	drain(t, s) // the worker retires the expired flight before draining
	if got := runs.Load(); got != 1 {
		t.Errorf("run executed %d times; the expired flight must not run", got)
	}
	if m := s.Metrics(); m.Deadlines < 2 { // the waiter and the worker discard
		t.Errorf("deadlines = %d, want >= 2", m.Deadlines)
	}
}

func TestPanicRecovered(t *testing.T) {
	s := New(Options{Workers: 1})
	defer drain(t, s)

	s.run = func(ctx context.Context, r scenario.Resolved) (engine.Result, error) {
		panic("backend exploded")
	}
	h := s.Handler()
	code, resp, _ := postSpec(t, h, `{"preset":"paper-baseline","seed":1}`)
	if code != http.StatusInternalServerError || !strings.Contains(resp.Error, "backend exploded") {
		t.Fatalf("status %d error %q", code, resp.Error)
	}

	// The worker survived: a healthy run still completes.
	s.run = func(ctx context.Context, r scenario.Resolved) (engine.Result, error) {
		return okResult()
	}
	if code, resp, _ := postSpec(t, h, `{"preset":"paper-baseline","seed":2}`); code != http.StatusOK {
		t.Fatalf("after panic: status %d error %q", code, resp.Error)
	}
	if m := s.Metrics(); m.Panics != 1 {
		t.Errorf("panics = %d, want 1", m.Panics)
	}
}

func TestRunDeadlinePropagates(t *testing.T) {
	s := New(Options{Workers: 1, DefaultTimeout: 50 * time.Millisecond})
	defer drain(t, s)

	s.run = func(ctx context.Context, r scenario.Resolved) (engine.Result, error) {
		<-ctx.Done() // a cooperative backend: stops when the deadline fires
		return engine.Result{}, ctx.Err()
	}
	code, resp, _ := postSpec(t, s.Handler(), `{"preset":"paper-baseline","seed":1}`)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d error %q, want 504", code, resp.Error)
	}
	// The waiter's 504 races the worker retiring the flight; allow the
	// worker a moment to record the failure.
	deadline := time.Now().Add(10 * time.Second)
	for s.Metrics().Failed != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("metrics = %+v, want Failed = 1", s.Metrics())
		}
		time.Sleep(time.Millisecond)
	}
	if m := s.Metrics(); m.Deadlines == 0 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestDrainRefusesNewWorkAndFinishesOld(t *testing.T) {
	s := New(Options{Workers: 1})

	started := make(chan struct{})
	release := make(chan struct{})
	s.run = func(ctx context.Context, r scenario.Resolved) (engine.Result, error) {
		close(started)
		<-release
		return okResult()
	}
	h := s.Handler()

	var inFlightCode int32
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		code, _, _ := postSpec(t, h, `{"preset":"paper-baseline","seed":1}`)
		atomic.StoreInt32(&inFlightCode, int32(code))
	}()
	<-started

	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drainDone <- s.Drain(ctx)
	}()
	for !s.Metrics().Draining {
		time.Sleep(time.Millisecond)
	}

	// While draining: not ready, and new work is refused with 503.
	req := httptest.NewRequest(http.MethodGet, "/readyz", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Errorf("/readyz while draining: %d", w.Code)
	}
	code, _, hdr := postSpec(t, h, `{"preset":"paper-baseline","seed":2}`)
	if code != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Errorf("new work while draining: status %d Retry-After %q", code, hdr.Get("Retry-After"))
	}

	// The admitted flight still completes, then the drain finishes.
	close(release)
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	if atomic.LoadInt32(&inFlightCode) != http.StatusOK {
		t.Errorf("in-flight request finished with %d", inFlightCode)
	}

	// Drain again: immediate no-op.
	drain(t, s)
}

func TestDrainTimesOutOnStuckWork(t *testing.T) {
	s := New(Options{Workers: 1})
	started := make(chan struct{})
	release := make(chan struct{})
	s.run = func(ctx context.Context, r scenario.Resolved) (engine.Result, error) {
		close(started)
		<-release
		return okResult()
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postSpec(t, s.Handler(), `{"preset":"paper-baseline","seed":1}`)
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("drain of a stuck flight returned nil")
	}
	close(release)
	wg.Wait()
	drain(t, s)
}

func TestHealthAndMetricsEndpoints(t *testing.T) {
	s := New(Options{})
	defer drain(t, s)
	h := s.Handler()

	for _, path := range []string{"/healthz", "/readyz"} {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
		if w.Code != http.StatusOK {
			t.Errorf("%s: %d", path, w.Code)
		}
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	var m Snapshot
	if err := json.Unmarshal(w.Body.Bytes(), &m); err != nil {
		t.Fatalf("metrics body %q: %v", w.Body.String(), err)
	}
	if m.QueueCap != 64 {
		t.Errorf("queue cap = %d, want the 64 default", m.QueueCap)
	}
}
