package sim

// Activity execution mode: run-to-completion event handlers driven inline
// by the kernel's dispatch loop, with zero goroutines, zero channel
// operations, and zero stack switches. Activities coexist with Proc-based
// processes on the same event heap — mixed models interleave under the
// exact same deterministic (t, seq) order — but a switch between two
// activities costs only a heap pop and a method call, where a switch
// between two processes costs a goroutine handoff.
//
// The price is the classic event-oriented one: an activity cannot block
// mid-function. It is a state machine the kernel steps; every blocking
// primitive comes in a "try or register" form (AcquireAct, GetAct,
// WaitAct) whose slow path registers the activity and returns, and the
// activity is stepped again when the wait is over. See the package
// comment for guidance on choosing between the two modes.

import "fmt"

// Activity is a run-to-completion event handler. The kernel calls Step
// each time the activity is resumed: at its spawn time, after every
// ActCtx.Wait/Sleep, and when a blocking registration (resource grant,
// store delivery, signal trigger) completes. Step must not block; it
// performs inline work, issues at most one pending wait or registration,
// and returns. An activity ends by calling ActCtx.Exit.
type Activity interface {
	Step(a *ActCtx)
}

// ActivityFunc adapts a plain function to the Activity interface.
type ActivityFunc func(a *ActCtx)

// Step calls the function.
func (f ActivityFunc) Step(a *ActCtx) { f(a) }

// ActCtx is the kernel-side record of one spawned activity and the handle
// its Step method uses to interact with the kernel (the activity-mode
// counterpart of Context). An ActCtx is only valid between SpawnActivity
// and Exit, on the kernel's single logical thread.
type ActCtx struct {
	k    *Kernel
	act  Activity
	name string
	id   int64

	started bool // first Step delivered (traces "start")
	done    bool // Exit called or killed at end of run
	// pending is set while a resumption is owed — a scheduled resume
	// event, or a registration in a resource/store/signal queue that will
	// schedule one. At most one may exist at a time; a second blocking
	// call before the first resolves is a model bug and panics.
	pending bool
	// waiting is set while the activity is registered in a wait structure
	// with no scheduled event (it counts toward deadlock detection).
	waiting bool
	// waitTraced mirrors the Proc trace protocol: Wait traces "wait" and
	// the matching resumption traces "run".
	waitTraced bool

	// sleep is the pending interruptible Sleep timer, for Interrupt.
	sleep       Timer
	interrupted bool

	// rw is the embedded resource waiter: an activity blocks on at most
	// one resource at a time, so queue registration needs no allocation.
	rw resWaiter
	// wslot holds an in-flight store waiter (a *storeWaiter[T] pointer;
	// storing a pointer in an interface does not allocate).
	wslot any
}

// SpawnActivity registers act and schedules its first Step at the current
// simulated time.
func (k *Kernel) SpawnActivity(name string, act Activity) *ActCtx {
	return k.SpawnActivityAt(k.now, name, act)
}

// SpawnActivityAt registers act with its first Step at absolute time t.
func (k *Kernel) SpawnActivityAt(t Time, name string, act Activity) *ActCtx {
	a := &ActCtx{k: k, act: act, name: name, id: k.nextID}
	a.rw.a = a
	k.nextID++
	k.addAct(a)
	if t < k.now {
		panic(fmt.Sprintf("sim: SpawnActivityAt(%g) before now (%g)", t, k.now))
	}
	a.pending = true
	k.scheduleActEvent(t, a)
	return a
}

// addAct registers a spawned activity, sweeping finished entries when the
// roster has grown well past the live population (same policy as addProc).
func (k *Kernel) addAct(a *ActCtx) {
	if !k.draining && len(k.acts) >= 64 && len(k.acts) >= 2*k.liveActs {
		kept := k.acts[:0]
		for _, q := range k.acts {
			if !q.done {
				kept = append(kept, q)
			}
		}
		for i := len(kept); i < len(k.acts); i++ {
			k.acts[i] = nil
		}
		k.acts = kept
	}
	k.acts = append(k.acts, a)
	k.liveActs++
}

// stepActivity delivers one resumption: it runs Step inline on whichever
// goroutine is dispatching, converting a panic into the run's error (the
// same containment runCallback gives scheduled callbacks).
func (k *Kernel) stepActivity(a *ActCtx) {
	a.pending = false
	if k.Tracer != nil {
		if !a.started {
			k.trace(k.now, a.name, "start")
		} else if a.waitTraced {
			a.waitTraced = false
			k.trace(k.now, a.name, "run")
		}
	}
	a.started = true
	defer func() {
		if r := recover(); r != nil {
			if k.err == nil {
				k.err = fmt.Errorf("sim: activity %q panicked: %v", a.name, r)
			}
			k.stopped = true
		}
	}()
	a.act.Step(a)
}

// finishAct marks one activity done and drops it from the live count.
func (k *Kernel) finishAct(a *ActCtx) {
	if a.done {
		return
	}
	a.done = true
	if a.waiting {
		a.waiting = false
		k.actsBlocked--
	}
	k.liveActs--
	k.trace(k.now, a.name, "done")
}

// blockAct records that a (not yet resumable) registration now owns the
// activity: it counts as blocked for deadlock detection until a grant
// schedules its resumption.
func (k *Kernel) blockAct(a *ActCtx) {
	if a.pending {
		panic(fmt.Sprintf("sim: activity %q blocked while a resumption is already pending", a.name))
	}
	a.pending = true
	a.waiting = true
	k.actsBlocked++
}

// resumeBlockedAct converts a blocked registration into a scheduled
// resumption at the current time (grant, delivery, trigger). A grant
// reaching an already-finished activity (end-of-run teardown) is dropped
// so the blocked accounting stays intact.
func (k *Kernel) resumeBlockedAct(a *ActCtx) {
	if a.done {
		return
	}
	a.waiting = false
	k.actsBlocked--
	k.scheduleActEvent(k.now, a)
}

// Now returns the current simulated time.
func (a *ActCtx) Now() Time { return a.k.now }

// Kernel returns the kernel this activity runs on.
func (a *ActCtx) Kernel() *Kernel { return a.k }

// Name returns the activity name given at spawn time.
func (a *ActCtx) Name() string { return a.name }

// Done reports whether the activity has exited.
func (a *ActCtx) Done() bool { return a.done }

// Wait schedules this activity's next Step after d (>= 0) simulated time.
// It is the inline-fast-path equivalent of Context.Wait: the resumption is
// a recycled event, so the path does not allocate. Step must return after
// calling Wait without issuing another blocking call.
func (a *ActCtx) Wait(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: Wait with negative duration %g", d))
	}
	if a.pending {
		panic(fmt.Sprintf("sim: activity %q scheduled a second resumption in one step", a.name))
	}
	if a.k.Tracer != nil {
		a.k.trace(a.k.now, a.name, "wait")
		a.waitTraced = true
	}
	a.pending = true
	a.k.scheduleActEvent(a.k.now+d, a)
}

// WaitUntil schedules the next Step at absolute simulated time t (>= now).
func (a *ActCtx) WaitUntil(t Time) { a.Wait(t - a.k.now) }

// Yield lets every other event scheduled at the current instant run before
// this activity's next Step (equivalent to Wait(0), named for intent).
func (a *ActCtx) Yield() { a.Wait(0) }

// Sleep is the interruptible wait: the next Step runs after d simulated
// time, or immediately if another process or activity calls
// InterruptActivity meanwhile. The resumed Step distinguishes the two with
// Interrupted.
func (a *ActCtx) Sleep(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: Sleep with negative duration %g", d))
	}
	if a.pending {
		panic(fmt.Sprintf("sim: activity %q scheduled a second resumption in one step", a.name))
	}
	a.pending = true
	ev := a.k.scheduleActEvent(a.k.now+d, a)
	a.sleep = Timer{ev: ev, gen: ev.gen}
}

// Interrupted consumes and reports the interrupt flag: true when the
// current Step was resumed early out of Sleep by InterruptActivity.
func (a *ActCtx) Interrupted() bool {
	was := a.interrupted
	a.interrupted = false
	return was
}

// InterruptActivity wakes target early if it is blocked in an
// interruptible Sleep, reporting whether an interrupt was delivered.
// Interrupting an activity that is not sleeping is a no-op returning
// false (matching Kernel.Interrupt for processes: only interruptible
// waits are interruptible).
func (k *Kernel) InterruptActivity(target *ActCtx) bool {
	if target.done || !target.sleep.Cancel() {
		return false
	}
	target.sleep = Timer{}
	target.interrupted = true
	target.pending = true
	k.scheduleActEvent(k.now, target)
	return true
}

// Exit ends the activity. Any stale resumption left in the event queue is
// skipped. Exit must be the last kernel interaction of the final Step;
// exiting while registered in a wait queue is a model bug (the eventual
// grant would reach a dead activity — and, for a resource, leak the taken
// units) and panics rather than corrupting state silently.
func (a *ActCtx) Exit() {
	if a.waiting {
		panic(fmt.Sprintf("sim: activity %q exited while registered in a wait queue", a.name))
	}
	a.k.finishAct(a)
}

// Spawn starts a child process at the current time (activities may own
// process-based helpers in mixed models).
func (a *ActCtx) Spawn(name string, fn func(*Context)) *Proc {
	return a.k.Spawn(name, fn)
}

// SpawnActivity starts a sibling activity at the current time.
func (a *ActCtx) SpawnActivity(name string, act Activity) *ActCtx {
	return a.k.SpawnActivity(name, act)
}
