package sim

// Tests of the activity execution mode: equivalence with the Proc mode
// under the property-test model (identical traces, byte-identical across
// reruns), the Interrupt/Timer.Cancel/Advance interplay, mixed
// Proc+Activity models, and allocation guards pinning the inline paths at
// zero.

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// recTracer records (t, track, state) triples for trace comparison.
type recTracer struct {
	events []traceEvent
}

type traceEvent struct {
	t     Time
	track string
	state string
}

func (r *recTracer) ProcState(t Time, name, state string) {
	r.events = append(r.events, traceEvent{t, name, state})
}

// workerPlan is one worker's precomputed schedule: alternating waits and
// resource holds. Both execution modes consume the same plan, so any
// trajectory difference is the kernel's fault, not sampling noise.
type workerPlan struct {
	waits []Time
	holds []Time
}

func makePlans(seed uint64, workers, steps int) []workerPlan {
	st := rng.New(seed)
	plans := make([]workerPlan, workers)
	for i := range plans {
		plans[i] = workerPlan{waits: make([]Time, steps), holds: make([]Time, steps)}
		for j := 0; j < steps; j++ {
			plans[i].waits[j] = st.Exp(3)
			plans[i].holds[j] = st.Exp(2)
		}
	}
	return plans
}

// runPlansProc executes the plans as processes; returns the trace, final
// time, and total grants.
func runPlansProc(plans []workerPlan, capacity int) ([]traceEvent, Time, int64, error) {
	k := NewKernel()
	rec := &recTracer{}
	k.Tracer = rec
	r := NewResource(k, "res", capacity, FIFO)
	for i := range plans {
		pl := &plans[i]
		k.Spawn("w", func(c *Context) {
			for j := range pl.waits {
				c.Wait(pl.waits[j])
				r.Acquire(c)
				c.Wait(pl.holds[j])
				r.Release(1)
			}
		})
	}
	now, err := k.RunUntilIdle()
	return rec.events, now, r.Grants(), err
}

// planWorker is the activity-mode form of the same worker.
type planWorker struct {
	pl    *workerPlan
	r     *Resource
	step  int
	state int // 0: start wait; 1: acquire; 2: hold; 3: release
}

func (w *planWorker) Step(a *ActCtx) {
	for {
		switch w.state {
		case 0:
			if w.step >= len(w.pl.waits) {
				a.Exit()
				return
			}
			w.state = 1
			a.Wait(w.pl.waits[w.step])
			return
		case 1:
			w.state = 2
			if !w.r.Acquire1Act(a) {
				return
			}
		case 2:
			w.state = 3
			a.Wait(w.pl.holds[w.step])
			return
		case 3:
			w.r.Release(1)
			w.step++
			w.state = 0
		}
	}
}

// runPlansAct executes the plans as activities.
func runPlansAct(plans []workerPlan, capacity int) ([]traceEvent, Time, int64, error) {
	k := NewKernel()
	rec := &recTracer{}
	k.Tracer = rec
	r := NewResource(k, "res", capacity, FIFO)
	for i := range plans {
		k.SpawnActivity("w", &planWorker{pl: &plans[i], r: r})
	}
	now, err := k.RunUntilIdle()
	return rec.events, now, r.Grants(), err
}

func tracesEqual(a, b []traceEvent) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestActivityProcTraceEquivalence: for any random workload the activity
// mode produces the exact event trajectory of the process mode — same
// trace (times, order, states), same final time, same grant count — and
// the activity run is byte-identical across reruns.
func TestActivityProcTraceEquivalence(t *testing.T) {
	err := quick.Check(func(seed uint64, wRaw, sRaw, cRaw uint8) bool {
		workers := 1 + int(wRaw%8)
		steps := 1 + int(sRaw%12)
		capacity := 1 + int(cRaw%3)
		plans := makePlans(seed, workers, steps)
		pTrace, pNow, pGrants, pErr := runPlansProc(plans, capacity)
		aTrace, aNow, aGrants, aErr := runPlansAct(plans, capacity)
		if pErr != nil || aErr != nil {
			return false
		}
		aTrace2, aNow2, _, aErr2 := runPlansAct(plans, capacity)
		if aErr2 != nil || aNow2 != aNow || !tracesEqual(aTrace, aTrace2) {
			return false // activity rerun not byte-identical
		}
		return pNow == aNow && pGrants == aGrants && tracesEqual(pTrace, aTrace)
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Error(err)
	}
}

// TestActivityInterruptSleep: InterruptActivity ends a Sleep early with
// the interrupted flag set; an undisturbed Sleep runs to term with the
// flag clear; interrupting a non-sleeping activity is a refused no-op.
func TestActivityInterruptSleep(t *testing.T) {
	k := NewKernel()
	var wakes []Time
	var flags []bool
	var sleeper *ActCtx
	sleeper = k.SpawnActivity("sleeper", ActivityFunc(func(a *ActCtx) {
		if len(wakes) > 0 || a.Now() > 0 {
			wakes = append(wakes, a.Now())
			flags = append(flags, a.Interrupted())
		}
		if len(wakes) >= 2 {
			a.Exit()
			return
		}
		a.Sleep(100)
	}))
	k.Schedule(5, func() {
		if !k.InterruptActivity(sleeper) {
			t.Error("interrupt of sleeping activity refused")
		}
	})
	if _, err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	// First sleep starts at 0, interrupted at 5; second runs 5..105.
	if len(wakes) != 2 || wakes[0] != 5 || wakes[1] != 105 {
		t.Fatalf("wakes = %v, want [5 105]", wakes)
	}
	if !flags[0] || flags[1] {
		t.Fatalf("interrupted flags = %v, want [true false]", flags)
	}
	if k.InterruptActivity(sleeper) {
		t.Error("interrupt of an exited activity succeeded")
	}

	k2 := NewKernel()
	idle := k2.SpawnActivity("idle", ActivityFunc(func(a *ActCtx) {}))
	if err := k2.Advance(1); err != nil {
		t.Fatal(err)
	}
	if k2.InterruptActivity(idle) {
		t.Error("interrupt of a dormant (non-sleeping) activity succeeded")
	}
}

// TestActivityTimerCancelAdvance: timers armed from activity steps honour
// Cancel across Advance windows, Wait resumptions span window boundaries,
// and a canceled resumption never steps the activity.
func TestActivityTimerCancelAdvance(t *testing.T) {
	k := NewKernel()
	fired := 0
	var tm Timer
	var steps []Time
	k.SpawnActivity("arm", ActivityFunc(func(a *ActCtx) {
		steps = append(steps, a.Now())
		if a.Now() == 0 {
			// Arm a callback due in the second window; it is canceled from
			// outside between the windows, so it must never fire.
			tm = a.Kernel().Schedule(40, func() { fired++ })
			a.Wait(10) // resumes in the same window
			return
		}
		if a.Now() == 10 {
			a.Wait(20) // spans the window boundary at 25
			return
		}
		a.Exit()
	}))
	if err := k.Advance(25); err != nil {
		t.Fatal(err)
	}
	if k.Now() != 25 {
		t.Fatalf("Now = %g after Advance(25)", k.Now())
	}
	if !tm.Cancel() {
		t.Fatal("cancel of pending timer between windows failed")
	}
	if err := k.Advance(100); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatalf("canceled timer fired %d times", fired)
	}
	if len(steps) != 3 || steps[0] != 0 || steps[1] != 10 || steps[2] != 30 {
		t.Fatalf("steps = %v, want [0 10 30]", steps)
	}
	if k.LiveActivities() != 0 {
		t.Fatalf("LiveActivities = %d after Exit", k.LiveActivities())
	}
}

// TestScheduleArgDelivery: ScheduleArg delivers the argument without a
// per-call closure, and its Timer cancels like any other.
func TestScheduleArgDelivery(t *testing.T) {
	k := NewKernel()
	var got []int
	deliver := func(x any) { got = append(got, x.(int)) }
	k.ScheduleArg(2, deliver, 7)
	k.ScheduleArg(1, deliver, 3)
	tm := k.ScheduleArg(3, deliver, 9)
	if !tm.Cancel() {
		t.Fatal("ScheduleArg timer cancel failed")
	}
	if _, err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("deliveries = %v, want [3 7]", got)
	}
}

// TestMixedProcActivityOrdering: processes and activities contending the
// same FIFO resource are granted strictly in request order, regardless of
// mode.
func TestMixedProcActivityOrdering(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "res", 1, FIFO)
	var order []int
	const each = 8
	for i := 0; i < each; i++ {
		id := 2 * i
		at := Time(i)
		k.SpawnAt(at, "p", func(c *Context) {
			r.Acquire(c)
			order = append(order, id)
			c.Wait(3)
			r.Release(1)
		})
		aid := 2*i + 1
		k.SpawnActivityAt(at+0.5, "a", &mixedAcquirer{r: r, id: aid, order: &order})
	}
	if _, err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2*each {
		t.Fatalf("grants = %d, want %d", len(order), 2*each)
	}
	for i, id := range order {
		if id != i {
			t.Fatalf("grant order %v: position %d got %d", order, i, id)
		}
	}
}

type mixedAcquirer struct {
	r     *Resource
	id    int
	order *[]int
	state int
}

func (m *mixedAcquirer) Step(a *ActCtx) {
	switch m.state {
	case 0:
		m.state = 1
		if !m.r.Acquire1Act(a) {
			return
		}
		fallthrough
	case 1:
		*m.order = append(*m.order, m.id)
		m.state = 2
		a.Wait(3)
	case 2:
		m.r.Release(1)
		a.Exit()
	}
}

// TestMixedProcActivityStore: values flow between the two modes through
// one store in FIFO order, in both directions.
func TestMixedProcActivityStore(t *testing.T) {
	k := NewKernel()
	s := NewStore[int](k, "box")
	var actGot, procGot []int
	// Proc producer -> activity consumer.
	k.Spawn("producer", func(c *Context) {
		for i := 0; i < 10; i++ {
			c.Wait(1)
			s.Put(c, i)
		}
	})
	k.SpawnActivity("consumer", ActivityFunc(func(a *ActCtx) {
		for {
			v, ok := s.GetAct(a)
			if !ok {
				return
			}
			actGot = append(actGot, v)
			if len(actGot) == 10 {
				a.Exit()
				return
			}
		}
	}))
	// Activity producer -> proc consumer.
	s2 := NewStore[int](k, "box2")
	k.SpawnActivity("producer2", &actProducer{s: s2, n: 10})
	k.Spawn("consumer2", func(c *Context) {
		for i := 0; i < 10; i++ {
			procGot = append(procGot, s2.Get(c))
		}
	})
	if _, err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if actGot[i] != i || procGot[i] != i {
			t.Fatalf("actGot = %v, procGot = %v", actGot, procGot)
		}
	}
}

type actProducer struct {
	s *Store[int]
	n int
	i int
}

func (p *actProducer) Step(a *ActCtx) {
	if p.i > 0 {
		p.s.TryPut(p.i - 1)
	}
	if p.i == p.n {
		a.Exit()
		return
	}
	p.i++
	a.Wait(1)
}

// TestActivitySignalJoin: a WaitGroup joins activities and processes
// together; the joiner (an activity) resumes only after every member is
// done.
func TestActivitySignalJoin(t *testing.T) {
	k := NewKernel()
	wg := NewWaitGroup(k, "join", 4)
	var joinedAt Time = -1
	for i := 0; i < 2; i++ {
		d := Time(10 * (i + 1))
		k.Spawn("p", func(c *Context) {
			c.Wait(d)
			wg.Done()
		})
		k.SpawnActivity("a", &delayedDone{wg: wg, d: d + 5})
	}
	k.SpawnActivity("joiner", ActivityFunc(func(a *ActCtx) {
		if !wg.WaitAct(a) {
			return
		}
		joinedAt = a.Now()
		a.Exit()
	}))
	if _, err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if joinedAt != 25 {
		t.Fatalf("joined at %g, want 25 (the slowest member)", joinedAt)
	}
}

type delayedDone struct {
	wg    *WaitGroup
	d     Time
	state int
}

func (d *delayedDone) Step(a *ActCtx) {
	if d.state == 0 {
		d.state = 1
		a.Wait(d.d)
		return
	}
	d.wg.Done()
	a.Exit()
}

// TestActivityDeadlockDetection: a blocked (queue-registered) activity
// with no events left is a deadlock; a dormant activity is not.
func TestActivityDeadlockDetection(t *testing.T) {
	k := NewKernel()
	s := NewStore[int](k, "empty")
	k.SpawnActivity("starved", ActivityFunc(func(a *ActCtx) {
		if _, ok := s.GetAct(a); !ok {
			return
		}
		a.Exit()
	}))
	if _, err := k.RunUntilIdle(); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}

	k2 := NewKernel()
	k2.SpawnActivity("dormant", ActivityFunc(func(a *ActCtx) {
		// Returns without pending work: an idle event-oriented server.
	}))
	if _, err := k2.RunUntilIdle(); err != nil {
		t.Fatalf("dormant activity reported: %v", err)
	}
}

// TestActivityPanicSurfaces: a panicking Step becomes the run's error
// instead of crashing whichever goroutine dispatched it.
func TestActivityPanicSurfaces(t *testing.T) {
	k := NewKernel()
	k.SpawnActivity("bad", ActivityFunc(func(a *ActCtx) {
		panic("boom")
	}))
	_, err := k.RunUntilIdle()
	if err == nil {
		t.Fatal("activity panic did not surface")
	}
}

// TestActivityDoubleBlockPanics: issuing two pending resumptions in one
// step is a model bug and must be reported, not silently double-stepped.
func TestActivityDoubleBlockPanics(t *testing.T) {
	k := NewKernel()
	k.SpawnActivity("greedy", ActivityFunc(func(a *ActCtx) {
		a.Wait(1)
		a.Wait(2)
	}))
	if _, err := k.RunUntilIdle(); err == nil {
		t.Fatal("double Wait in one step not reported")
	}
}

// TestActivityExitWhileRegisteredPanics: Exit with a wait-queue
// registration outstanding would leave a dead activity enqueued (and leak
// resource units at grant time); it must be reported as a model bug.
func TestActivityExitWhileRegisteredPanics(t *testing.T) {
	k := NewKernel()
	s := NewStore[int](k, "box")
	k.SpawnActivity("quitter", ActivityFunc(func(a *ActCtx) {
		if _, ok := s.GetAct(a); !ok {
			a.Exit() // bug: still registered as a getter
		}
	}))
	if _, err := k.RunUntilIdle(); err == nil {
		t.Fatal("Exit while registered not reported")
	}
}

// TestActivityCrossStoreGetPanics: a GetAct on a different store while a
// delivery is in flight on another store of the same element type must be
// reported, not silently collect the wrong store's item.
func TestActivityCrossStoreGetPanics(t *testing.T) {
	k := NewKernel()
	s1 := NewStore[int](k, "box1")
	s2 := NewStore[int](k, "box2")
	k.SpawnActivity("confused", ActivityFunc(func(a *ActCtx) {
		if a.Now() == 0 {
			if _, ok := s1.GetAct(a); ok {
				t.Error("unexpected immediate delivery")
			}
			return
		}
		// Resumed by s1's delivery, but collects from s2: model bug.
		s2.GetAct(a)
	}))
	k.Schedule(1, func() { s1.TryPut(7) })
	if _, err := k.RunUntilIdle(); err == nil {
		t.Fatal("cross-store GetAct not reported")
	}
}

// TestMixedModelsParallelRace drives several independent mixed
// Proc+Activity kernels from concurrent goroutines. Under -race this
// checks two things: activity state stepped from whichever goroutine
// happens to dispatch (controller or a parked process) is properly
// ordered by the handoff protocol, and kernels share no hidden package
// state.
func TestMixedModelsParallelRace(t *testing.T) {
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		seed := uint64(g + 1)
		go func() {
			k := NewKernel()
			r := NewResource(k, "res", 2, FIFO)
			s := NewStore[int](k, "box")
			plans := makePlans(seed, 4, 20)
			for i := range plans {
				k.SpawnActivity("a", &planWorker{pl: &plans[i], r: r})
			}
			for i := 0; i < 4; i++ {
				i := i
				k.Spawn("p", func(c *Context) {
					for j := 0; j < 20; j++ {
						c.Wait(0.7)
						r.Acquire(c)
						c.Wait(0.3)
						r.Release(1)
						s.Put(c, i*100+j)
					}
				})
			}
			k.SpawnActivity("drain", ActivityFunc(func(a *ActCtx) {
				for {
					if _, ok := s.GetAct(a); !ok {
						return
					}
				}
			}))
			_, err := k.RunUntilIdle()
			done <- err
		}()
	}
	for g := 0; g < 4; g++ {
		// The drain activity stays registered when the puts run out.
		if err := <-done; err != nil && !errors.Is(err, ErrDeadlock) {
			t.Error(err)
		}
	}
}

// --- Allocation regression guards -------------------------------------
//
// The activity-mode satellites of the kernel_bench_test.go guards: the
// inline fast paths — Wait, Sleep+Interrupt, Signal rounds, contended
// Acquire, store ping-pong — must stay allocation-free at steady state.

// TestActivityWaitAllocsPinned: the activity Wait/step cycle is
// allocation-free.
func TestActivityWaitAllocsPinned(t *testing.T) {
	k := NewKernel()
	var w waitLoopAct
	k.SpawnActivity("w", &w)
	t.Cleanup(func() { _ = k.Run(k.Now()) })
	next := Time(256)
	if err := k.Advance(next); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		next += 256
		if err := k.Advance(next); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state activity Wait allocates %.1f objects per 256-wait window, want 0", allocs)
	}
}

type waitLoopAct struct{}

func (*waitLoopAct) Step(a *ActCtx) { a.Wait(1) }

// TestActivitySleepInterruptAllocsPinned: Sleep plus InterruptActivity is
// allocation-free.
func TestActivitySleepInterruptAllocsPinned(t *testing.T) {
	k := NewKernel()
	var s sleepLoopAct
	target := k.SpawnActivity("s", &s)
	interrupt := func() { k.InterruptActivity(target) }
	t.Cleanup(func() { _ = k.Run(k.Now()) })
	next := Time(0)
	window := func() {
		for j := 0; j < 64; j++ {
			k.Schedule(Time(j)+0.5, interrupt)
		}
		next += 64
		if err := k.Advance(next); err != nil {
			t.Fatal(err)
		}
	}
	window() // prime free lists and queue capacity
	allocs := testing.AllocsPerRun(100, func() { window() })
	if allocs != 0 {
		t.Errorf("steady-state Sleep+Interrupt allocates %.1f objects per 64-cycle window, want 0", allocs)
	}
	if s.interrupts == 0 {
		t.Fatal("no interrupts delivered")
	}
}

type sleepLoopAct struct {
	interrupts int
}

func (s *sleepLoopAct) Step(a *ActCtx) {
	if a.Interrupted() {
		s.interrupts++
	}
	a.Sleep(1000)
}

// TestActivitySignalAllocsPinned: a Trigger/Reset round over registered
// activity waiters is allocation-free at steady state.
func TestActivitySignalAllocsPinned(t *testing.T) {
	k := NewKernel()
	sig := NewSignal(k, "gate")
	var ws [4]sigLoopAct
	for i := range ws {
		ws[i].sig = sig
		k.SpawnActivity("w", &ws[i])
	}
	round := func() { sig.Trigger(); sig.Reset() }
	t.Cleanup(func() { _ = k.Run(k.Now()) })
	next := Time(0)
	window := func() {
		for j := 0; j < 64; j++ {
			k.Schedule(Time(j)+0.5, round)
		}
		next += 64
		if err := k.Advance(next); err != nil {
			t.Fatal(err)
		}
	}
	window()
	allocs := testing.AllocsPerRun(100, func() { window() })
	if allocs != 0 {
		t.Errorf("steady-state Signal round allocates %.1f objects per 64-round window, want 0", allocs)
	}
	if ws[0].rounds == 0 {
		t.Fatal("no signal rounds observed")
	}
}

type sigLoopAct struct {
	sig    *Signal
	rounds int
}

func (s *sigLoopAct) Step(a *ActCtx) {
	s.rounds++
	if !s.sig.WaitAct(a) {
		return
	}
	// Already triggered: yield until the next round's registration window.
	a.Wait(1)
}

// TestActivityAcquireContendedAllocsPinned: contended activity acquires
// (queue registration, grant, resumption) are allocation-free.
func TestActivityAcquireContendedAllocsPinned(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "res", 1, FIFO)
	for i := 0; i < 3; i++ {
		k.SpawnActivity("c", &contendLoopAct{r: r})
	}
	t.Cleanup(func() { _ = k.Run(k.Now()) })
	next := Time(256)
	if err := k.Advance(next); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		next += 256
		if err := k.Advance(next); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state contended AcquireAct allocates %.1f objects per 256-cycle window, want 0", allocs)
	}
}

type contendLoopAct struct {
	r     *Resource
	state int
}

func (c *contendLoopAct) Step(a *ActCtx) {
	for {
		switch c.state {
		case 0:
			c.state = 1
			if !c.r.Acquire1Act(a) {
				return
			}
		case 1:
			c.state = 2
			a.Wait(1)
			return
		case 2:
			c.r.Release(1)
			c.state = 0
		}
	}
}

// TestActivityStoreAllocsPinned: the GetAct/TryPut ping-pong (register,
// deliver, collect) is allocation-free.
func TestActivityStoreAllocsPinned(t *testing.T) {
	k := NewKernel()
	s := NewStore[int](k, "box")
	var g getLoopAct
	g.s = s
	k.SpawnActivity("g", &g)
	feed := func() { s.TryPut(1) }
	t.Cleanup(func() { _ = k.Run(k.Now()) })
	next := Time(0)
	window := func() {
		for j := 0; j < 64; j++ {
			k.Schedule(Time(j)+0.5, feed)
		}
		next += 64
		if err := k.Advance(next); err != nil {
			t.Fatal(err)
		}
	}
	window()
	allocs := testing.AllocsPerRun(100, func() { window() })
	if allocs != 0 {
		t.Errorf("steady-state GetAct/TryPut allocates %.1f objects per 64-item window, want 0", allocs)
	}
	if g.got == 0 {
		t.Fatal("no items delivered")
	}
}

type getLoopAct struct {
	s   *Store[int]
	got int
}

func (g *getLoopAct) Step(a *ActCtx) {
	for {
		if _, ok := g.s.GetAct(a); !ok {
			return
		}
		g.got++
	}
}
