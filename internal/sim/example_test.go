package sim_test

import (
	"fmt"

	"repro/internal/sim"
)

// A minimal two-process simulation: a producer feeds a store, a consumer
// drains it, the kernel interleaves them deterministically.
func Example() {
	k := sim.NewKernel()
	box := sim.NewStore[string](k, "box")
	k.Spawn("producer", func(c *sim.Context) {
		c.Wait(5)
		box.Put(c, "hello")
		c.Wait(5)
		box.Put(c, "world")
	})
	k.Spawn("consumer", func(c *sim.Context) {
		for i := 0; i < 2; i++ {
			msg := box.Get(c)
			fmt.Printf("t=%v: %s\n", c.Now(), msg)
		}
	})
	if _, err := k.RunUntilIdle(); err != nil {
		panic(err)
	}
	// Output:
	// t=5: hello
	// t=10: world
}

// Resources model servers: capacity 1 makes jobs queue FIFO.
func ExampleResource() {
	k := sim.NewKernel()
	cpu := sim.NewResource(k, "cpu", 1, sim.FIFO)
	for i := 0; i < 3; i++ {
		i := i
		k.Spawn("job", func(c *sim.Context) {
			cpu.Acquire(c)
			c.Wait(10)
			cpu.Release(1)
			fmt.Printf("job %d done at t=%v\n", i, c.Now())
		})
	}
	if _, err := k.RunUntilIdle(); err != nil {
		panic(err)
	}
	fmt.Printf("utilization: %.0f%%\n", 100*cpu.Utilization(k.Now()))
	// Output:
	// job 0 done at t=10
	// job 1 done at t=20
	// job 2 done at t=30
	// utilization: 100%
}
