package sim

// Property tests of the specialized 4-ary event queue against the
// reference container/heap implementation the kernel used before the
// hot-path overhaul: for arbitrary randomized schedules — including
// duplicate timestamps, interleaved pushes and pops, and canceled events
// — both heaps must pop in the identical (t, seq) order, so kernel
// determinism (and byte-identical suite output) is preserved by
// construction.

import (
	"container/heap"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// refHeap is the old heap.Interface implementation, kept verbatim as the
// ordering oracle.
type refHeap []*event

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// TestEventQueueMatchesContainerHeap: pushing the same randomized
// schedule into both heaps and draining yields the identical pop order.
func TestEventQueueMatchesContainerHeap(t *testing.T) {
	err := quick.Check(func(seed uint64, sizeRaw uint16) bool {
		n := 1 + int(sizeRaw%600)
		st := rng.New(seed)
		var q eventHeap
		var ref refHeap
		for i := 0; i < n; i++ {
			// Coarse timestamps force plenty of (t, seq) ties.
			ev := &event{t: Time(st.Intn(20)), seq: uint64(i)}
			q.push(ev)
			heap.Push(&ref, ev)
		}
		for i := 0; i < n; i++ {
			got := q.pop()
			want := heap.Pop(&ref).(*event)
			if got != want {
				t.Logf("pop %d: got (t=%g seq=%d), want (t=%g seq=%d)",
					i, got.t, got.seq, want.t, want.seq)
				return false
			}
		}
		return len(q) == 0
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

// TestEventQueueInterleavedMatchesContainerHeap: arbitrary interleavings
// of pushes and pops — the shape the dispatch loop actually produces,
// where firing events schedule new ones — agree at every step.
func TestEventQueueInterleavedMatchesContainerHeap(t *testing.T) {
	err := quick.Check(func(seed uint64, opsRaw uint16) bool {
		ops := 10 + int(opsRaw%2000)
		st := rng.New(seed)
		var q eventHeap
		var ref refHeap
		now := Time(0)
		seq := uint64(0)
		for i := 0; i < ops; i++ {
			if len(q) != len(ref) {
				return false
			}
			if len(q) == 0 || st.Float64() < 0.55 {
				// Causal schedule: never before the virtual clock.
				ev := &event{t: now + Time(st.Intn(8)), seq: seq}
				seq++
				q.push(ev)
				heap.Push(&ref, ev)
				continue
			}
			got := q.pop()
			want := heap.Pop(&ref).(*event)
			if got != want {
				return false
			}
			now = got.t
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

// TestKernelScheduleOrderRandomized: end to end through the kernel —
// random same-and-distinct-time schedules with a sprinkling of cancels
// fire strictly in (t, seq) order, identically across reruns.
func TestKernelScheduleOrderRandomized(t *testing.T) {
	run := func(seed uint64, n int) []int {
		st := rng.New(seed)
		k := NewKernel()
		var order []int
		timers := make([]Timer, 0, n)
		for i := 0; i < n; i++ {
			i := i
			timers = append(timers, k.Schedule(Time(st.Intn(16)), func() {
				order = append(order, i)
			}))
		}
		// Cancel a deterministic random subset.
		for i := range timers {
			if st.Float64() < 0.2 {
				timers[i].Cancel()
			}
		}
		if _, err := k.RunUntilIdle(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	err := quick.Check(func(seed uint64, sizeRaw uint8) bool {
		n := 1 + int(sizeRaw%200)
		a := run(seed, n)
		b := run(seed, n)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}
