// Package sim is a deterministic process-interaction discrete-event
// simulation kernel. It is the replacement for the commercial HyPerformix
// SES/Workbench tool the paper used: transactions are modeled as lightweight
// processes (goroutines) that advance simulated time by waiting, acquiring
// resources, and exchanging messages, while a single-threaded event loop
// guarantees reproducible execution order.
//
// Concurrency model: any number of process goroutines may exist, but exactly
// one of them (or the kernel event loop itself) runs at any instant. Control
// passes between the kernel and a process through a channel handoff, so the
// simulation is deterministic: the same seed and model always produce the
// same trajectory. Ties in event time are broken by schedule order.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
)

// Time is simulated time. The models in this repository measure time in HWP
// clock cycles (the paper normalizes all times to heavyweight-processor
// cycles), but the kernel itself is unit-agnostic.
type Time = float64

// ErrDeadlock is returned by RunUntilIdle when no events remain but live
// processes are still blocked.
var ErrDeadlock = errors.New("sim: deadlock: no scheduled events but processes remain blocked")

// event is a scheduled callback or process resumption. Events are
// recycled through the kernel's free list once fired or collected dead,
// so steady-state scheduling does not allocate; gen distinguishes
// incarnations so a stale Timer cannot cancel the struct's next tenant.
// Process resumptions carry the process directly (proc != nil) instead of
// a closure, keeping the kernel's hottest path — Wait and blocking-wakeup
// events — entirely allocation-free.
type event struct {
	t     Time
	seq   uint64 // tie-breaker: schedule order
	fn    func()
	proc  *Proc  // when non-nil, resume this process instead of calling fn
	dead  bool   // canceled
	index int    // heap index, maintained by heap.Interface
	gen   uint64 // incarnation counter, bumped on recycle
}

// eventHeap is a min-heap on (t, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Kernel is a discrete-event simulation instance. Create one with NewKernel;
// the zero value is not usable.
type Kernel struct {
	now    Time
	events eventHeap
	free   []*event // recycled events (see event)
	seq    uint64
	procs  map[*Proc]struct{} // live (started, not finished) processes
	yield  chan struct{}      // process -> kernel handoff
	err    error              // first process panic, if any
	nextID int64

	// Tracer, if non-nil, observes process state transitions. Used by the
	// trace package to build per-processor timelines.
	Tracer Tracer

	stopped bool // Stop() requested
}

// Tracer receives process lifecycle callbacks. All callbacks run on the
// simulation's single logical thread.
type Tracer interface {
	// ProcState is called when process name enters the given informal state
	// ("start", "wait", "run", "done", ...) at simulated time t.
	ProcState(t Time, name string, state string)
}

// NewKernel returns an empty simulation at time 0.
func NewKernel() *Kernel {
	return &Kernel{
		procs: make(map[*Proc]struct{}),
		yield: make(chan struct{}),
	}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Timer is a handle to a scheduled callback; Cancel prevents a pending
// callback from firing. The generation pins the handle to one incarnation
// of the (recycled) event struct.
type Timer struct {
	ev  *event
	gen uint64
}

// Cancel marks the timer dead. Canceling an already-fired or already-
// canceled timer is a no-op. It reports whether the cancel took effect.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.gen != t.gen || t.ev.dead || t.ev.index < 0 {
		return false
	}
	t.ev.dead = true
	return true
}

// scheduleEvent is the internal Timer-free scheduling path: it registers
// either a callback (fn) or a process resumption (p) at absolute time t,
// reusing a recycled event when one is free. Scheduling in the past
// panics (events must be causal).
func (k *Kernel) scheduleEvent(t Time, fn func(), p *Proc) *event {
	if t < k.now {
		panic(fmt.Sprintf("sim: ScheduleAt(%g) before now (%g)", t, k.now))
	}
	var ev *event
	if n := len(k.free); n > 0 {
		ev = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		ev.t, ev.fn, ev.proc, ev.dead = t, fn, p, false
		ev.seq = k.seq
	} else {
		ev = &event{t: t, seq: k.seq, fn: fn, proc: p}
	}
	k.seq++
	heap.Push(&k.events, ev)
	return ev
}

// ScheduleAt registers fn to run at absolute simulated time t. Scheduling
// in the past panics (events must be causal).
func (k *Kernel) ScheduleAt(t Time, fn func()) *Timer {
	ev := k.scheduleEvent(t, fn, nil)
	return &Timer{ev: ev, gen: ev.gen}
}

// Schedule registers fn to run after the given delay (>= 0).
func (k *Kernel) Schedule(delay Time, fn func()) *Timer {
	if delay < 0 {
		panic(fmt.Sprintf("sim: Schedule with negative delay %g", delay))
	}
	return k.ScheduleAt(k.now+delay, fn)
}

// Stop requests that the current Run call return after the event that is
// executing finishes. Remaining processes are killed as on normal
// completion.
func (k *Kernel) Stop() { k.stopped = true }

// step executes the next event. It reports false when no live events remain.
func (k *Kernel) step(until Time, bounded bool) bool {
	for len(k.events) > 0 {
		ev := k.events[0]
		if ev.dead {
			heap.Pop(&k.events)
			k.recycle(ev)
			continue
		}
		if bounded && ev.t > until {
			return false
		}
		heap.Pop(&k.events)
		k.now = ev.t
		fn, p := ev.fn, ev.proc
		k.recycle(ev)
		if p != nil {
			k.resume(p)
		} else {
			fn()
		}
		return true
	}
	return false
}

// recycle returns a popped event to the free list for the next
// scheduleEvent. Bumping gen invalidates any Timer still holding the
// struct.
func (k *Kernel) recycle(ev *event) {
	ev.fn = nil
	ev.proc = nil
	ev.gen++
	k.free = append(k.free, ev)
}

// Run advances the simulation until simulated time `until`, then kills any
// remaining processes and returns the first process error (model panic), if
// any. After Run returns, Now() == until (unless Stop was called earlier).
func (k *Kernel) Run(until Time) error {
	if until < k.now {
		return fmt.Errorf("sim: Run(%g) before now (%g)", until, k.now)
	}
	for !k.stopped && k.step(until, true) {
	}
	if !k.stopped {
		k.now = until
	}
	k.shutdown()
	return k.err
}

// RunUntilIdle advances the simulation until no events remain. It returns
// the final simulated time and ErrDeadlock if blocked processes remain, or
// the first process error.
func (k *Kernel) RunUntilIdle() (Time, error) {
	for !k.stopped && k.step(0, false) {
	}
	if k.err != nil {
		k.shutdown()
		return k.now, k.err
	}
	if len(k.procs) > 0 {
		blocked := len(k.procs)
		k.shutdown()
		if k.err != nil {
			return k.now, k.err
		}
		return k.now, fmt.Errorf("%w (%d blocked)", ErrDeadlock, blocked)
	}
	k.shutdown()
	return k.now, k.err
}

// shutdown kills every remaining process so no goroutines leak. Processes
// are unblocked in an arbitrary but inconsequential order: each one panics
// internally with a kill sentinel that its wrapper recovers.
func (k *Kernel) shutdown() {
	for len(k.procs) > 0 {
		var p *Proc
		for q := range k.procs {
			if p == nil || q.id < p.id {
				p = q // deterministic order: lowest id first
			}
		}
		k.kill(p)
	}
}

// kill terminates one live process.
func (k *Kernel) kill(p *Proc) {
	if p.done {
		delete(k.procs, p)
		return
	}
	p.killed = true
	if p.cancel != nil {
		p.cancel()
		p.cancel = nil
	}
	k.resume(p)
}

// resume hands control to process p and blocks until it parks again or
// finishes. Must only be called from the kernel's logical thread (inside an
// event callback or the shutdown loop).
func (k *Kernel) resume(p *Proc) {
	if p.done {
		return
	}
	if !p.started {
		p.started = true
		go p.main()
	} else {
		p.wake <- struct{}{}
	}
	<-k.yield
}

// scheduleResume schedules process p to be resumed after delay. This is the
// only correct way to wake a process from inside another process (direct
// resume would re-enter the handoff protocol). The wakeup is a recycled
// proc-carrying event, so the path does not allocate.
func (k *Kernel) scheduleResume(p *Proc, delay Time) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: Schedule with negative delay %g", delay))
	}
	k.scheduleEvent(k.now+delay, nil, p)
}

// scheduleResumeTimer is scheduleResume with a cancel handle, for
// interruptible waits.
func (k *Kernel) scheduleResumeTimer(p *Proc, delay Time) *Timer {
	if delay < 0 {
		panic(fmt.Sprintf("sim: Schedule with negative delay %g", delay))
	}
	ev := k.scheduleEvent(k.now+delay, nil, p)
	return &Timer{ev: ev, gen: ev.gen}
}

// Idle reports whether no events are pending and no processes are live.
func (k *Kernel) Idle() bool { return len(k.events) == 0 && len(k.procs) == 0 }

// PendingEvents returns the number of scheduled (possibly canceled) events;
// exposed for tests and diagnostics.
func (k *Kernel) PendingEvents() int { return len(k.events) }

// LiveProcs returns the number of live processes.
func (k *Kernel) LiveProcs() int { return len(k.procs) }

func (k *Kernel) trace(t Time, name, state string) {
	if k.Tracer != nil {
		k.Tracer.ProcState(t, name, state)
	}
}
