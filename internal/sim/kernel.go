// Package sim is a deterministic discrete-event simulation kernel with two
// execution modes sharing one event heap. It is the replacement for the
// commercial HyPerformix SES/Workbench tool the paper used.
//
// Process mode (Proc, Context): transactions are modeled as lightweight
// processes (goroutines) that advance simulated time by waiting, acquiring
// resources, and exchanging messages, while a single logical thread of
// control guarantees reproducible execution order. Any number of process
// goroutines may exist, but exactly one of them (or the controller that
// called Run) executes at any instant. The logical thread is handed
// directly from goroutine to goroutine: a parking process continues
// dispatching events itself, so a burst of same-window resumptions costs
// one channel handoff per process switch (and none at all when a process's
// next event resumes the process itself). Write models in this mode when
// straight-line control flow matters more than throughput: the model body
// reads like sequential code and may block anywhere.
//
// Activity mode (Activity, ActCtx): run-to-completion event handlers the
// kernel steps inline in its dispatch loop — zero goroutines, zero channel
// operations, zero stack switches. A switch between two activities costs a
// heap pop instead of a goroutine handoff (an order of magnitude cheaper),
// at the price of event-oriented style: the model is an explicit state
// machine and every blocking primitive becomes a "try or register" call
// (AcquireAct, GetAct, WaitAct). Write hot simulation loops in this mode;
// the repository's heavy studies (hostpim, parcelsys, the activity-mode
// queueing stations) all do.
//
// The two modes coexist on the same kernel: events carry either a callback,
// a process resumption, or an activity step, and the single (t, seq) order
// covers all three, so a mixed model is exactly as deterministic as a pure
// one. The same seed and model always produce the same trajectory; ties in
// event time are broken by schedule order.
//
// For big models, ParKernel partitions a run across shard kernels advanced
// concurrently in conservative time windows, with cross-shard interactions
// routed through Kernel.Send under a declared lookahead. Barrier-time
// replay renumbering keeps the trajectory byte-identical to one serial
// kernel running the whole model, for every shard count and partition
// assignment — parallelism is an execution strategy, never a semantic.
package sim

import (
	"errors"
	"fmt"
)

// Time is simulated time. The models in this repository measure time in HWP
// clock cycles (the paper normalizes all times to heavyweight-processor
// cycles), but the kernel itself is unit-agnostic.
type Time = float64

// ErrDeadlock is returned by RunUntilIdle when no events remain but live
// processes are still blocked.
var ErrDeadlock = errors.New("sim: deadlock: no scheduled events but processes remain blocked")

// event is a scheduled callback, process resumption, or activity step.
// Events are recycled through the kernel's free list once fired or
// collected dead, so steady-state scheduling does not allocate; gen
// distinguishes incarnations so a stale Timer cannot cancel the struct's
// next tenant. Resumptions carry the process or activity directly instead
// of a closure, keeping the kernel's hottest paths — Wait and
// blocking-wakeup events in both execution modes — entirely
// allocation-free; ScheduleArg callbacks likewise carry their argument out
// of line so one function value can serve many deliveries.
type event struct {
	t    Time
	seq  uint64  // tie-breaker: schedule order
	proc *Proc   // when non-nil, resume this process
	act  *ActCtx // when non-nil, step this activity
	fn   func()
	afn  func(any) // when non-nil, call afn(arg)
	arg  any
	dead bool   // canceled
	gen  uint64 // incarnation counter, bumped on recycle
}

// eventHeap is a 4-ary min-heap on (t, seq) specialized to *event: the
// comparisons are inlined and nothing is boxed, unlike container/heap's
// interface-driven sift. The wider fan-out halves the tree depth of the
// binary heap, which pays on the pop-heavy dispatch loop. It is the
// single-partition implementation of the eventQueue interface (see
// queue.go); the Kernel uses it concretely so the hot paths keep their
// devirtualized, inlinable calls.
type eventHeap []*event

// push inserts ev, sifting up with inlined (t, seq) comparisons.
func (q *eventHeap) push(ev *event) {
	a := append(*q, ev)
	i := len(a) - 1
	t, seq := ev.t, ev.seq
	for i > 0 {
		pi := (i - 1) >> 2
		p := a[pi]
		if p.t < t || (p.t == t && p.seq < seq) {
			break
		}
		a[i] = p
		i = pi
	}
	a[i] = ev
	*q = a
}

// pop removes and returns the minimum event, nil when the heap is empty
// (the eventQueue contract both implementations share — see queue.go).
func (q *eventHeap) pop() *event {
	a := *q
	n := len(a) - 1
	if n < 0 {
		return nil
	}
	top := a[0]
	last := a[n]
	a[n] = nil
	a = a[:n]
	*q = a
	if n > 0 {
		i := 0
		t, seq := last.t, last.seq
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			m, mc := c, a[c]
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				cj := a[j]
				if cj.t < mc.t || (cj.t == mc.t && cj.seq < mc.seq) {
					m, mc = j, cj
				}
			}
			if t < mc.t || (t == mc.t && seq < mc.seq) {
				break
			}
			a[i] = mc
			i = m
		}
		a[i] = last
	}
	return top
}

// dispatchState is the outcome of one dispatch burst (see Kernel.dispatch).
type dispatchState int

const (
	// resumedSelf: the next due event resumes the dispatching process
	// itself — it continues immediately, with no channel traffic at all.
	resumedSelf dispatchState = iota
	// handedOff: another process now owns the logical thread; the caller
	// must wait for it to come back (own wake channel, or yield for the
	// controller) or simply exit (a finished process).
	handedOff
	// exhausted: nothing is due (bound reached, queue empty, or the run
	// stopped); the logical thread returns to the controller.
	exhausted
)

// Kernel is a discrete-event simulation instance. Create one with NewKernel;
// the zero value is not usable.
type Kernel struct {
	now Time
	// events is a pointer so a partitioned run can alias one shard of a
	// partitionedQueue here (see parallel.go); the calls stay devirtualized
	// *eventHeap methods either way.
	events *eventHeap
	free   []*event // recycled events (see event)
	seq    uint64

	// par is non-nil when this kernel is one shard of a ParKernel; it
	// carries the shard's window state and cross-shard buffers.
	par *shardState

	// procs lists every spawned, not-yet-reaped process in id (== spawn)
	// order; done processes are swept lazily. live counts the non-done
	// ones, so the hot paths never touch a map.
	procs []*Proc
	live  int

	// acts is the activity roster (same sweep policy as procs); liveActs
	// counts the not-yet-exited ones, actsBlocked the subset registered in
	// a wait structure with no scheduled resumption (these count toward
	// deadlock detection exactly as blocked processes do).
	acts        []*ActCtx
	liveActs    int
	actsBlocked int

	yield  chan struct{} // logical thread -> controller handoff (cap 1)
	err    error         // first process panic, if any
	nextID int64

	// until/bounded frame the current drain window (set by Advance, Run,
	// and RunUntilIdle; read by every dispatcher). strict excludes events
	// at exactly `until` — the half-open [W, W+L) windows of a partitioned
	// run; serial drains are inclusive and leave it false.
	until   Time
	bounded bool
	strict  bool

	// Tracer, if non-nil, observes process state transitions. Used by the
	// trace package to build per-processor timelines.
	Tracer Tracer

	stopped  bool // Stop() requested
	draining bool // shutdown in progress: dispatch is suspended
	running  bool // a drain window is active: Run/Advance must not reenter
}

// Tracer receives process lifecycle callbacks. All callbacks run on the
// simulation's single logical thread.
type Tracer interface {
	// ProcState is called when process name enters the given informal state
	// ("start", "wait", "run", "done", ...) at simulated time t.
	ProcState(t Time, name string, state string)
}

// NewKernel returns an empty simulation at time 0.
func NewKernel() *Kernel {
	return &Kernel{events: new(eventHeap), yield: make(chan struct{}, 1)}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Timer is a handle to a scheduled callback; Cancel prevents a pending
// callback from firing. The generation pins the handle to one incarnation
// of the (recycled) event struct. Timer is a small value: copying it is
// free and the zero value is a no-op handle.
type Timer struct {
	ev  *event
	gen uint64
}

// Cancel marks the timer dead. Canceling an already-fired or already-
// canceled timer is a no-op. It reports whether the cancel took effect.
func (t Timer) Cancel() bool {
	if t.ev == nil || t.ev.gen != t.gen || t.ev.dead {
		return false
	}
	t.ev.dead = true
	return true
}

// newEvent takes a recycled event (or allocates one), stamps it with the
// given time and the next sequence number, and leaves the payload fields
// for the caller to fill before pushing. Scheduling in the past panics
// (events must be causal).
func (k *Kernel) newEvent(t Time) *event {
	if t < k.now {
		panic(fmt.Sprintf("sim: ScheduleAt(%g) before now (%g)", t, k.now))
	}
	var ev *event
	if n := len(k.free); n > 0 {
		ev = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		ev.t, ev.dead = t, false
	} else {
		ev = &event{t: t}
	}
	ev.seq = k.nextSeq()
	if sh := k.par; sh != nil && sh.window {
		sh.logCall(ev, ev.gen)
	}
	return ev
}

// nextSeq draws the next sequence number. A standalone kernel uses its own
// counter; a ParKernel shard draws from the shared counter while the run is
// single-threaded (setup, between windows) and from its provisional
// per-shard counter (rebased each window, renumbered to the exact serial
// values at the barrier — see parallel.go) while a window is draining.
func (k *Kernel) nextSeq() uint64 {
	if sh := k.par; sh != nil && !sh.window {
		s := sh.pk.seq
		sh.pk.seq++
		return s
	}
	s := k.seq
	k.seq++
	return s
}

// scheduleEvent is the internal Timer-free scheduling path: it registers
// either a callback (fn) or a process resumption (p) at absolute time t,
// reusing a recycled event when one is free.
func (k *Kernel) scheduleEvent(t Time, fn func(), p *Proc) *event {
	ev := k.newEvent(t)
	ev.fn, ev.proc = fn, p
	k.events.push(ev)
	return ev
}

// scheduleActEvent registers a step of activity a at absolute time t —
// the activity-mode resumption path, allocation-free at steady state.
func (k *Kernel) scheduleActEvent(t Time, a *ActCtx) *event {
	ev := k.newEvent(t)
	ev.act = a
	k.events.push(ev)
	return ev
}

// ScheduleAt registers fn to run at absolute simulated time t. Scheduling
// in the past panics (events must be causal).
func (k *Kernel) ScheduleAt(t Time, fn func()) Timer {
	ev := k.scheduleEvent(t, fn, nil)
	return Timer{ev: ev, gen: ev.gen}
}

// Schedule registers fn to run after the given delay (>= 0).
func (k *Kernel) Schedule(delay Time, fn func()) Timer {
	if delay < 0 {
		panic(fmt.Sprintf("sim: Schedule with negative delay %g", delay))
	}
	return k.ScheduleAt(k.now+delay, fn)
}

// ScheduleArg registers fn(arg) to run after the given delay (>= 0). The
// callback and its argument travel separately through the (recycled)
// event, so one per-run function value can serve any number of scheduled
// deliveries with no closure allocation per call — the timed message-
// delivery path of the activity-mode models. Passing a pointer as arg does
// not allocate.
func (k *Kernel) ScheduleArg(delay Time, fn func(any), arg any) Timer {
	if delay < 0 {
		panic(fmt.Sprintf("sim: ScheduleArg with negative delay %g", delay))
	}
	ev := k.newEvent(k.now + delay)
	ev.afn, ev.arg = fn, arg
	k.events.push(ev)
	return Timer{ev: ev, gen: ev.gen}
}

// Stop requests that the current Run call return after the event that is
// executing finishes. Remaining processes are killed as on normal
// completion.
func (k *Kernel) Stop() { k.stopped = true }

// dispatch executes due events on the calling goroutine until the logical
// thread must move elsewhere. self is the parked process driving the loop
// (nil for the controller and for finished processes). Callback events run
// inline; a resumption of self returns resumedSelf with no channel
// traffic; a resumption of any other process starts or wakes it and
// returns handedOff — the caller must then relinquish control. When
// nothing is due within the window, dispatch returns exhausted.
//
// A panicking callback is recorded as the run's error and stops the run
// (it would otherwise unwind whichever goroutine happened to be
// dispatching, crashing the program from a process that did nothing
// wrong).
func (k *Kernel) dispatch(self *Proc) dispatchState {
	for {
		if k.stopped || k.draining {
			return exhausted
		}
		if len(*k.events) == 0 {
			return exhausted
		}
		ev := (*k.events)[0]
		if ev.dead {
			k.events.pop()
			k.recycle(ev)
			continue
		}
		if k.bounded && (ev.t > k.until || (k.strict && ev.t == k.until)) {
			return exhausted
		}
		k.events.pop()
		k.now = ev.t
		if sh := k.par; sh != nil && sh.window {
			// Every schedule made while this event (or code it hands the
			// logical thread to) runs is logged under it for the barrier's
			// serial renumbering.
			sh.curT, sh.curSeq, sh.curLogged = ev.t, ev.seq, false
		}
		// The payload fields are read lazily, most-frequent kind first, so
		// the hot resume paths touch as little of the event as possible.
		if a := ev.act; a != nil {
			k.recycle(ev)
			// Activity step: runs inline on this goroutine — the logical
			// thread never moves, whole bursts of activity events drain
			// with no handoffs at all.
			if !a.done {
				k.stepActivity(a)
			}
			continue
		}
		if p := ev.proc; p != nil {
			k.recycle(ev)
			if p.done {
				// Stale resumption of a finished process (possible only for
				// events left over from a previous window); skip it.
				continue
			}
			if p == self {
				return resumedSelf
			}
			k.startOrWake(p)
			return handedOff
		}
		fn, afn, arg := ev.fn, ev.afn, ev.arg
		k.recycle(ev)
		if afn != nil {
			k.runArgCallback(afn, arg)
		} else {
			k.runCallback(fn)
		}
	}
}

// runCallback runs one scheduled callback, converting a panic into the
// run's error so the failure surfaces from Run regardless of which
// goroutine was dispatching.
func (k *Kernel) runCallback(fn func()) {
	defer func() {
		if r := recover(); r != nil {
			if k.err == nil {
				k.err = fmt.Errorf("sim: scheduled callback panicked: %v", r)
			}
			k.stopped = true
		}
	}()
	fn()
}

// runArgCallback is runCallback for ScheduleArg events.
func (k *Kernel) runArgCallback(fn func(any), arg any) {
	defer func() {
		if r := recover(); r != nil {
			if k.err == nil {
				k.err = fmt.Errorf("sim: scheduled callback panicked: %v", r)
			}
			k.stopped = true
		}
	}()
	fn(arg)
}

// startOrWake gives the logical thread to process p.
func (k *Kernel) startOrWake(p *Proc) {
	if !p.started {
		p.started = true
		go p.main()
	} else {
		p.wake <- struct{}{}
	}
}

// recycle returns a popped event to the free list for the next
// scheduleEvent. Bumping gen invalidates any Timer still holding the
// struct.
func (k *Kernel) recycle(ev *event) {
	ev.fn = nil
	ev.proc = nil
	ev.act = nil
	ev.afn = nil
	ev.arg = nil
	ev.gen++
	k.free = append(k.free, ev)
}

// drain runs the event loop from the controller side over the given
// window: dispatch until nothing is due, waiting out each burst that
// process goroutines carry among themselves. Reentry — Run or Advance
// called from a callback or process while a window is active — would
// clobber the window and can deadlock the handoff protocol, so it panics
// instead (surfacing as the run's error when it happens inside the
// simulation).
func (k *Kernel) drain(until Time, bounded bool) {
	if k.running {
		panic("sim: Run/Advance called from inside the running simulation")
	}
	k.running = true
	defer func() { k.running = false }()
	k.until, k.bounded = until, bounded
	for !k.stopped {
		switch k.dispatch(nil) {
		case handedOff:
			<-k.yield
		case exhausted:
			return
		}
	}
}

// Advance runs the simulation up to simulated time `until` and returns the
// first process error, if any. Unlike Run it does not kill the remaining
// processes, so repeated Advance calls execute a simulation incrementally;
// after Advance returns, Now() == until (unless Stop was called). Advance
// must be called from outside the simulation — calling it from a process
// or scheduled callback panics.
func (k *Kernel) Advance(until Time) error {
	if until < k.now {
		return fmt.Errorf("sim: Advance(%g) before now (%g)", until, k.now)
	}
	k.drain(until, true)
	if !k.stopped {
		k.now = until
	}
	return k.err
}

// Run advances the simulation until simulated time `until`, then kills any
// remaining processes and returns the first process error (model panic), if
// any. After Run returns, Now() == until (unless Stop was called earlier).
func (k *Kernel) Run(until Time) error {
	if until < k.now {
		return fmt.Errorf("sim: Run(%g) before now (%g)", until, k.now)
	}
	k.drain(until, true)
	if !k.stopped {
		k.now = until
	}
	k.shutdown()
	return k.err
}

// RunUntilIdle advances the simulation until no events remain. It returns
// the final simulated time and ErrDeadlock if blocked processes remain, or
// the first process error.
func (k *Kernel) RunUntilIdle() (Time, error) {
	k.drain(0, false)
	if k.err != nil {
		k.shutdown()
		return k.now, k.err
	}
	if k.live > 0 || k.actsBlocked > 0 {
		// Blocked processes and blocked (queue-registered) activities both
		// mean the model stalled. Activities that merely returned without a
		// pending resumption are dormant by design (an idle event-oriented
		// server) and do not count.
		blocked := k.live + k.actsBlocked
		k.shutdown()
		if k.err != nil {
			return k.now, k.err
		}
		return k.now, fmt.Errorf("%w (%d blocked)", ErrDeadlock, blocked)
	}
	k.shutdown()
	return k.now, k.err
}

// shutdown kills every remaining process so no goroutines leak. The procs
// list is in spawn (id) order, so processes die lowest id first —
// deterministic and, unlike a min-scan per kill, linear in the number of
// processes. A process whose deferred cleanup parks again (a blocking
// Wait or Acquire in a defer) is re-killed until it finishes, one defer
// level per pass, exactly as the old retry-until-empty loop did.
// Dispatch is suspended for the duration: events scheduled by dying
// processes' deferred cleanup accumulate but never fire.
func (k *Kernel) shutdown() {
	k.draining = true
	for i := 0; i < len(k.procs); i++ { // len re-read: defers may Spawn
		p := k.procs[i]
		for !p.done {
			k.kill(p)
		}
	}
	k.procs = k.procs[:0]
	k.live = 0
	// Activities have no stack to unwind: finishing them is marking them
	// done (which also deregisters the blocked ones from the deadlock
	// count). They die after the processes so that dying processes'
	// deferred cleanup may still Release/Trigger toward them.
	for _, a := range k.acts {
		k.finishAct(a)
	}
	k.acts = k.acts[:0]
	k.liveActs = 0
	k.actsBlocked = 0
	k.draining = false
}

// kill terminates one live process and waits for it to unwind.
func (k *Kernel) kill(p *Proc) {
	p.killed = true
	if p.cancel != nil {
		p.cancel()
		p.cancel = nil
	}
	k.startOrWake(p)
	<-k.yield
}

// addProc registers a newly spawned process, sweeping reaped entries when
// the roster has grown well past the live population. The sweep is
// suppressed mid-shutdown: it would shift not-yet-killed processes below
// the kill loop's index.
func (k *Kernel) addProc(p *Proc) {
	if !k.draining && len(k.procs) >= 64 && len(k.procs) >= 2*k.live {
		kept := k.procs[:0]
		for _, q := range k.procs {
			if !q.done {
				kept = append(kept, q)
			}
		}
		for i := len(kept); i < len(k.procs); i++ {
			k.procs[i] = nil
		}
		k.procs = kept
	}
	k.procs = append(k.procs, p)
	k.live++
}

// scheduleResume schedules process p to be resumed after delay. This is the
// only correct way to wake a process from inside another process (direct
// resume would re-enter the handoff protocol). The wakeup is a recycled
// proc-carrying event, so the path does not allocate.
func (k *Kernel) scheduleResume(p *Proc, delay Time) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: Schedule with negative delay %g", delay))
	}
	k.scheduleEvent(k.now+delay, nil, p)
}

// scheduleResumeTimer is scheduleResume with a cancel handle, for
// interruptible waits.
func (k *Kernel) scheduleResumeTimer(p *Proc, delay Time) Timer {
	if delay < 0 {
		panic(fmt.Sprintf("sim: Schedule with negative delay %g", delay))
	}
	ev := k.scheduleEvent(k.now+delay, nil, p)
	return Timer{ev: ev, gen: ev.gen}
}

// PopFront removes and returns the head of a FIFO slice by compacting in
// place: q[1:] would creep through the backing array and eventually
// reallocate, while shifting keeps steady-state queue traffic
// allocation-free (simulation queues are short, the copy is cheap). The
// kernel's wait queues and the queueing package's job queues share it.
func PopFront[T any](q []T) ([]T, T) {
	head := q[0]
	n := copy(q, q[1:])
	var zero T
	q[n] = zero
	return q[:n], head
}

// Idle reports whether nothing can ever happen again: no events are
// pending, no processes are live, and no activities are blocked in a wait
// queue. Dormant activities (spawned, not exited, nothing pending) do not
// count — with no events left they will never be stepped again.
func (k *Kernel) Idle() bool { return len(*k.events) == 0 && k.live == 0 && k.actsBlocked == 0 }

// PendingEvents returns the number of scheduled (possibly canceled) events;
// exposed for tests and diagnostics.
func (k *Kernel) PendingEvents() int { return len(*k.events) }

// LiveProcs returns the number of live processes.
func (k *Kernel) LiveProcs() int { return k.live }

// LiveActivities returns the number of spawned, not-yet-exited activities.
func (k *Kernel) LiveActivities() int { return k.liveActs }

func (k *Kernel) trace(t Time, name, state string) {
	if k.Tracer != nil {
		k.Tracer.ProcState(t, name, state)
	}
}
