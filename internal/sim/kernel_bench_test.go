package sim_test

// The kernel micro-benchmarks delegate to internal/benches, the single
// source of the workloads that cmd/pimbench records into BENCH_<n>.json —
// tuning a driver there changes both measurements together, so the
// trajectory stays comparable.

import (
	"testing"

	"repro/internal/benches"
	"repro/internal/sim"
)

func BenchmarkKernelSchedule(b *testing.B)      { benches.KernelSchedule(b) }
func BenchmarkKernelWaitResume(b *testing.B)    { benches.KernelWaitResume(b) }
func BenchmarkKernelHandoffChain(b *testing.B)  { benches.KernelHandoffChain(b) }
func BenchmarkKernelActivityChain(b *testing.B) { benches.KernelActivityChain(b) }

// BenchmarkTimerCancel measures the cancel-and-collect path: schedule,
// cancel, and let the dead event be swept on the next drain.
func BenchmarkTimerCancel(b *testing.B) {
	k := sim.NewKernel()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	const batch = 256
	for done := 0; done < b.N; done += batch {
		for j := 0; j < batch; j++ {
			tm := k.Schedule(sim.Time(j), fn)
			if !tm.Cancel() {
				b.Fatal("cancel failed")
			}
		}
		if _, err := k.RunUntilIdle(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Allocation regression guards -------------------------------------
//
// These pin the post-overhaul allocation counts of the kernel's hot
// paths. If a change re-introduces a per-event allocation (boxing in the
// event queue, a heap-escaping Timer, a closure on the resume path), the
// corresponding test fails rather than silently regressing every model.

// TestScheduleAllocsPinned: steady-state Schedule + drain is
// allocation-free (the free list recycles events; Timer is a value).
func TestScheduleAllocsPinned(t *testing.T) {
	k := sim.NewKernel()
	fn := func() {}
	// Prime the free list and the queue's capacity.
	for j := 0; j < 512; j++ {
		k.Schedule(sim.Time(j), fn)
	}
	if _, err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for j := 0; j < 512; j++ {
			k.Schedule(sim.Time(j), fn)
		}
		if _, err := k.RunUntilIdle(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Schedule+drain allocates %.1f objects per 512-event batch, want 0", allocs)
	}
}

// TestWaitWakeupAllocsPinned: a process Wait (schedule resume, park,
// dispatch own wakeup) is allocation-free.
func TestWaitWakeupAllocsPinned(t *testing.T) {
	k := sim.NewKernel()
	k.Spawn("waiter", func(c *sim.Context) {
		for {
			c.Wait(1)
		}
	})
	t.Cleanup(func() { _ = k.Run(k.Now()) })
	// Prime: first window starts the goroutine and grows the queue.
	next := sim.Time(256)
	if err := k.Advance(next); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		next += 256
		if err := k.Advance(next); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Wait/wakeup allocates %.1f objects per 256-wait window, want 0", allocs)
	}
}

// TestTimerCancelAllocsPinned: Cancel plus dead-event collection is
// allocation-free.
func TestTimerCancelAllocsPinned(t *testing.T) {
	k := sim.NewKernel()
	fn := func() {}
	for j := 0; j < 256; j++ {
		k.Schedule(sim.Time(j), fn)
	}
	if _, err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for j := 0; j < 256; j++ {
			tm := k.Schedule(sim.Time(j), fn)
			if !tm.Cancel() {
				t.Fatal("cancel failed")
			}
		}
		if _, err := k.RunUntilIdle(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Schedule+Cancel+collect allocates %.1f objects per 256-timer batch, want 0", allocs)
	}
}
