package sim

import "testing"

// BenchmarkKernelSchedule measures the callback-event path: schedule a
// batch of events, drain them. With the free list, steady-state
// scheduling reuses recycled event structs instead of heap-allocating one
// per Schedule.
func BenchmarkKernelSchedule(b *testing.B) {
	k := NewKernel()
	var sink int
	fn := func() { sink++ }
	b.ReportAllocs()
	b.ResetTimer()
	const batch = 256
	for done := 0; done < b.N; done += batch {
		for j := 0; j < batch; j++ {
			k.Schedule(Time(j), fn)
		}
		if _, err := k.RunUntilIdle(); err != nil {
			b.Fatal(err)
		}
	}
	if sink < 0 {
		b.Fatal("unreachable")
	}
}

// BenchmarkKernelWaitResume measures the kernel's hottest path — a
// process advancing time with Wait — which recycles proc-carrying events
// and must not allocate at all.
func BenchmarkKernelWaitResume(b *testing.B) {
	k := NewKernel()
	k.Spawn("waiter", func(c *Context) {
		for {
			c.Wait(1)
		}
	})
	b.Cleanup(k.shutdown)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !k.step(0, false) {
			b.Fatal("no pending events")
		}
	}
}
