package sim

// Conservative time-windowed parallel execution of one simulation —
// ROADMAP item 1's DES half, the counterpart of the machine backend's
// isa.runParallel (PR 7). A ParKernel is P shard kernels whose event
// heaps alias the partitions of one partitionedQueue. The coordinator
// reads the queue's merge front for the global minimum W and opens the
// window [W, W+L), where L is the model-declared lookahead: the minimum
// cross-shard event delay. Persistent workers drain their shards up to
// the horizon concurrently; cross-shard Sends buffer per shard and merge
// at the barrier in canonical (t, seq) order.
//
// What makes the trajectories byte-identical to the serial kernel — not
// merely deterministic per worker count — is the barrier's replay
// renumbering. The serial kernel breaks time ties by seq, the global
// schedule counter, so equality requires reproducing the exact serial
// counter values. While the run is single-threaded (model setup, between
// windows) shards draw from the shared counter directly, so those seqs
// are exact. During a window each shard numbers its schedules
// provisionally from the shared counter's value at the window start
// (the base) and logs every schedule under the event that made it (its
// caller). Conservative lookahead guarantees each shard fires exactly
// the window events the serial run would, in the same shard-local order,
// so the per-shard caller logs are each ascending in serial order; the
// barrier then replays them through a P-way merge on (t, caller seq) —
// resolving provisional caller seqs through the assignments already made
// — and hands out exact serial seqs call by call. Still-queued events
// are re-stamped in place (provisional and serial numbering are
// order-isomorphic within a shard, so the heap order is unchanged);
// buffered cross-shard sends become deliveries carrying their exact
// seq. Every provisional number is gone by the time anything can observe
// it across shards.
//
// The contract a model buys this with: shards share no mutable state,
// and every cross-shard interaction goes through Kernel.Send with delay
// >= the declared lookahead. Partitions that never communicate may
// declare an infinite lookahead, collapsing the run into one window per
// drain. A ParKernel with one partition skips the window machinery
// entirely and IS the serial kernel, which keeps the oracle honest: the
// equivalence tests run the same model code both ways.

import (
	"fmt"
	"math"
)

// shardState is the per-shard half of a partitioned run, hung off
// Kernel.par. During a window it is touched only by the worker (and the
// process goroutines) driving that shard; the coordinator touches it only
// between windows, with channel synchronization ordering the two.
type shardState struct {
	pk  *ParKernel
	idx int

	// window is true while a parallel window is draining this shard: the
	// shard numbers schedules provisionally and logs them for the barrier.
	window bool
	// base is the shared counter's value at the window start; seqs below
	// it are exact serial numbers, seqs at or above it are provisional.
	base uint64

	// curT/curSeq identify the event currently firing — the caller of any
	// schedule made during the window; curLogged dedups the caller record.
	curT      Time
	curSeq    uint64
	curLogged bool

	callers  []callerRec
	calls    []callRec
	outbox   []outMsg
	assigned []uint64 // barrier scratch: provisional offset -> exact seq
}

// callerRec groups the consecutive schedules made under one fired event.
type callerRec struct {
	t   Time
	seq uint64 // provisional if >= base, exact otherwise
	n   int    // schedules logged under this caller
}

// callRec is one logged schedule: the event it created, pinned to its
// incarnation so a recycled struct is not re-stamped by mistake, or nil
// for a cross-shard Send (which pairs with the next outbox entry).
type callRec struct {
	ev  *event
	gen uint64
}

// outMsg is one buffered cross-shard Send.
type outMsg struct {
	to  int
	t   Time
	fn  func(any)
	arg any
}

// logCall records one schedule under the current caller.
func (sh *shardState) logCall(ev *event, gen uint64) {
	if !sh.curLogged {
		sh.curLogged = true
		sh.callers = append(sh.callers, callerRec{t: sh.curT, seq: sh.curSeq})
	}
	sh.callers[len(sh.callers)-1].n++
	sh.calls = append(sh.calls, callRec{ev: ev, gen: gen})
}

// Send schedules fn(arg) on the given partition after delay. On a
// standalone kernel (and for a shard sending to itself) it is exactly
// ScheduleArg, so partition-aware model code runs unchanged on the serial
// kernel. On a partitioned run a cross-shard send must respect the
// declared lookahead (delay >= lookahead); a violation panics, which the
// kernel's callback containment converts into the run's error.
func (k *Kernel) Send(part int, delay Time, fn func(any), arg any) {
	sh := k.par
	if sh == nil || part == sh.idx {
		k.ScheduleArg(delay, fn, arg)
		return
	}
	pk := sh.pk
	if part < 0 || part >= len(pk.parts) {
		panic(fmt.Sprintf("sim: Send to partition %d of %d", part, len(pk.parts)))
	}
	if delay < pk.lookahead {
		panic(fmt.Sprintf("sim: Send delay %g below declared lookahead %g (partition %d -> %d)",
			delay, pk.lookahead, sh.idx, part))
	}
	t := k.now + delay
	if !sh.window {
		// Single-threaded phase: deliver directly with an exact seq.
		seq := pk.seq
		pk.seq++
		pk.parts[part].deliverEvent(t, seq, fn, arg)
		return
	}
	// Window: consume one provisional seq (so the replay's call-to-seq
	// pairing stays exact) and buffer the message for the barrier.
	k.seq++
	sh.logCall(nil, 0)
	sh.outbox = append(sh.outbox, outMsg{to: part, t: t, fn: fn, arg: arg})
}

// deliverEvent injects a cross-shard delivery carrying an externally
// assigned sequence number. Only the coordinator (between windows) and
// single-threaded Sends use it.
func (k *Kernel) deliverEvent(t Time, seq uint64, fn func(any), arg any) {
	if t < k.now {
		panic(fmt.Sprintf("sim: cross-partition delivery at %g before destination now (%g)", t, k.now))
	}
	var ev *event
	if n := len(k.free); n > 0 {
		ev = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		ev.t, ev.dead = t, false
	} else {
		ev = &event{t: t}
	}
	ev.seq = seq
	ev.afn, ev.arg = fn, arg
	k.events.push(ev)
}

// Partition returns the shard index this kernel runs as, or 0 for a
// standalone kernel — models use it to learn their own address for Sends.
func (k *Kernel) Partition() int {
	if k.par == nil {
		return 0
	}
	return k.par.idx
}

// windowJob is one window broadcast to the workers: drain up to h,
// exclusive when strict (the usual [W, W+L) window) or inclusive when not
// (the final window of a bounded run, clamped to `until`).
type windowJob struct {
	h      Time
	strict bool
}

// ParKernel runs one simulation partitioned over P shard kernels on a
// pool of persistent workers. Build the model across the shard kernels
// (Part), communicate between partitions only via Send with delay >= the
// declared lookahead, then drive the run with Run, Advance, or
// RunUntilIdle from one goroutine.
type ParKernel struct {
	parts     []*Kernel
	pq        *partitionedQueue
	lookahead Time
	workers   int
	seq       uint64 // the shared serial schedule counter

	deliveries []delivery // barrier scratch, reused across windows

	work    []chan windowJob
	done    chan struct{}
	started bool
	closed  bool

	err     error
	stopped bool
}

// delivery is one renumbered cross-shard message awaiting injection.
type delivery struct {
	to  int
	t   Time
	seq uint64
	fn  func(any)
	arg any
}

// NewParKernel creates a partitioned simulation with the given partition
// count, worker count (clamped to [1, parts]), and lookahead — the
// model-declared minimum cross-partition event delay. The lookahead must
// be positive when parts > 1; math.Inf(1) declares that the partitions
// never communicate during a drain.
func NewParKernel(parts, workers int, lookahead Time) *ParKernel {
	if parts < 1 {
		panic(fmt.Sprintf("sim: NewParKernel with %d partitions", parts))
	}
	if parts > 1 && !(lookahead > 0) {
		panic(fmt.Sprintf("sim: NewParKernel with %d partitions needs a positive lookahead, got %g", parts, lookahead))
	}
	if workers < 1 {
		workers = 1
	}
	if workers > parts {
		workers = parts
	}
	pk := &ParKernel{
		pq:        newPartitionedQueue(parts, nil),
		lookahead: lookahead,
		workers:   workers,
	}
	pk.parts = make([]*Kernel, parts)
	for i := range pk.parts {
		k := NewKernel()
		k.events = &pk.pq.parts[i]
		k.par = &shardState{pk: pk, idx: i}
		pk.parts[i] = k
	}
	return pk
}

// Part returns shard i's kernel.
func (pk *ParKernel) Part(i int) *Kernel { return pk.parts[i] }

// Parts returns the partition count.
func (pk *ParKernel) Parts() int { return len(pk.parts) }

// Workers returns the worker count.
func (pk *ParKernel) Workers() int { return pk.workers }

// Lookahead returns the declared minimum cross-partition delay.
func (pk *ParKernel) Lookahead() Time { return pk.lookahead }

// Now returns the latest shard time — after a completed Advance or Run
// every shard agrees on it.
func (pk *ParKernel) Now() Time {
	t := pk.parts[0].now
	for _, k := range pk.parts[1:] {
		if k.now > t {
			t = k.now
		}
	}
	return t
}

// startWorkers spins up the persistent pool on first use. Worker w owns
// shards w, w+W, w+2W, ... and drains them in that order each window.
func (pk *ParKernel) startWorkers() {
	if pk.closed {
		panic("sim: ParKernel driven after Close")
	}
	if pk.started {
		return
	}
	pk.started = true
	pk.work = make([]chan windowJob, pk.workers)
	pk.done = make(chan struct{}, pk.workers)
	for w := range pk.work {
		pk.work[w] = make(chan windowJob)
		go func(w int) {
			for job := range pk.work[w] {
				for s := w; s < len(pk.parts); s += pk.workers {
					k := pk.parts[s]
					if !k.stopped {
						k.windowDrain(job.h, job.strict)
					}
				}
				pk.done <- struct{}{}
			}
		}(w)
	}
}

// Close stops the worker pool. Run and RunUntilIdle close on completion;
// only Advance-style incremental driving needs an explicit Close.
// Closing is idempotent.
func (pk *ParKernel) Close() {
	if !pk.started || pk.closed {
		pk.closed = true
		return
	}
	pk.closed = true
	for _, c := range pk.work {
		close(c)
	}
}

// windowDrain drains one shard for one window; runs on a worker.
func (k *Kernel) windowDrain(h Time, strict bool) {
	k.strict = strict
	k.drain(h, true)
	k.strict = false
}

// collect folds shard status into the run: the first error (lowest shard
// index on ties — the serial run would have surfaced whichever came
// first; with errors on several shards at one barrier the tie is broken
// deterministically) and any Stop request.
func (pk *ParKernel) collect() {
	for _, k := range pk.parts {
		if k.err != nil && pk.err == nil {
			pk.err = k.err
		}
		if k.stopped {
			pk.stopped = true
		}
	}
}

// runWindows is the coordinator loop: open the window at the global
// minimum, drain all shards concurrently, renumber and deliver at the
// barrier; repeat until the bound (or the queue) is exhausted.
func (pk *ParKernel) runWindows(until Time, bounded bool) {
	pk.startWorkers()
	for {
		pk.collect()
		if pk.err != nil || pk.stopped {
			return
		}
		head := pk.pq.peek()
		if head == nil {
			return
		}
		w := head.t
		if bounded && w > until {
			return
		}
		job := windowJob{h: w + pk.lookahead, strict: true}
		if bounded && !(job.h <= until) {
			job = windowJob{h: until, strict: false}
		}
		base := pk.seq
		for _, k := range pk.parts {
			sh := k.par
			sh.window = true
			sh.base = base
			k.seq = base
			sh.callers = sh.callers[:0]
			sh.calls = sh.calls[:0]
			sh.outbox = sh.outbox[:0]
			sh.assigned = sh.assigned[:0]
		}
		for _, c := range pk.work {
			c <- job
		}
		for range pk.work {
			<-pk.done
		}
		for _, k := range pk.parts {
			k.par.window = false
		}
		pk.merge(base)
	}
}

// merge is the barrier's replay renumbering: walk the per-shard caller
// logs in ascending serial (t, seq) order — exactly the order the serial
// kernel would have made these schedules in — assigning each call its
// exact serial sequence number. Calls that created still-queued events
// re-stamp them in place; cross-shard sends become deliveries, injected
// in assignment order.
func (pk *ParKernel) merge(base uint64) {
	type cursor struct{ ci, ki, oi int }
	curs := make([]cursor, len(pk.parts))
	for {
		best := -1
		var bt Time
		var bseq uint64
		for s, k := range pk.parts {
			sh := k.par
			ci := curs[s].ci
			if ci >= len(sh.callers) {
				continue
			}
			rec := sh.callers[ci]
			key := rec.seq
			if key >= base {
				// A caller created earlier in this window: its exact seq
				// was assigned when its own creation call was replayed.
				key = sh.assigned[key-base]
			}
			if best < 0 || rec.t < bt || (rec.t == bt && key < bseq) {
				best, bt, bseq = s, rec.t, key
			}
		}
		if best < 0 {
			break
		}
		sh := pk.parts[best].par
		cu := &curs[best]
		rec := sh.callers[cu.ci]
		cu.ci++
		for i := 0; i < rec.n; i++ {
			c := sh.calls[cu.ki]
			cu.ki++
			g := pk.seq
			pk.seq++
			sh.assigned = append(sh.assigned, g)
			if c.ev == nil {
				m := sh.outbox[cu.oi]
				cu.oi++
				pk.deliveries = append(pk.deliveries, delivery{to: m.to, t: m.t, seq: g, fn: m.fn, arg: m.arg})
			} else if c.ev.gen == c.gen {
				c.ev.seq = g
			}
		}
	}
	for i := range pk.deliveries {
		d := &pk.deliveries[i]
		pk.parts[d.to].deliverEvent(d.t, d.seq, d.fn, d.arg)
		d.fn, d.arg = nil, nil
	}
	pk.deliveries = pk.deliveries[:0]
}

// Advance runs the partitioned simulation up to simulated time `until`
// without killing anything; every shard's Now() is `until` afterwards
// (unless Stop was requested). The worker pool stays up for the next
// call — Close it when done.
func (pk *ParKernel) Advance(until Time) error {
	if len(pk.parts) == 1 {
		return pk.parts[0].Advance(until)
	}
	if until < pk.Now() {
		return fmt.Errorf("sim: Advance(%g) before now (%g)", until, pk.Now())
	}
	pk.runWindows(until, true)
	pk.collect()
	if !pk.stopped {
		for _, k := range pk.parts {
			k.now = until
		}
	}
	return pk.err
}

// Run advances to `until`, then shuts every shard down (lowest shard
// first, each deterministically as the serial kernel would) and stops the
// workers. It returns the first model error, if any.
func (pk *ParKernel) Run(until Time) error {
	if len(pk.parts) == 1 {
		return pk.parts[0].Run(until)
	}
	err := pk.Advance(until)
	pk.shutdown()
	if err == nil {
		err = pk.err
	}
	return err
}

// AdvanceUntilIdle runs the partitioned simulation until no events remain
// anywhere, without shutting anything down: blocked processes and
// activities stay parked and the worker pool stays up, so a phased model
// can spawn its next phase and drive it with another Advance* call.
// Afterwards every shard's clock stands at the returned time (the latest
// shard time), giving the next phase a common start — shards that went
// idle early jump forward exactly as they would have slept through the
// remaining events. Close (or a final Run/RunUntilIdle) when done.
func (pk *ParKernel) AdvanceUntilIdle() (Time, error) {
	if len(pk.parts) == 1 {
		k := pk.parts[0]
		k.drain(0, false)
		return k.now, k.err
	}
	pk.runWindows(0, false)
	pk.collect()
	t := pk.Now()
	if !pk.stopped {
		for _, k := range pk.parts {
			if k.now < t {
				k.now = t
			}
		}
	}
	return t, pk.err
}

// RunUntilIdle advances until no events remain anywhere, returning the
// final simulated time (the latest shard time) and ErrDeadlock if blocked
// processes or activities remain on any shard. The worker pool is
// stopped.
func (pk *ParKernel) RunUntilIdle() (Time, error) {
	if len(pk.parts) == 1 {
		return pk.parts[0].RunUntilIdle()
	}
	pk.runWindows(0, false)
	pk.collect()
	if pk.err != nil {
		pk.shutdown()
		return pk.Now(), pk.err
	}
	blocked := 0
	for _, k := range pk.parts {
		blocked += k.live + k.actsBlocked
	}
	pk.shutdown()
	if pk.err != nil {
		return pk.Now(), pk.err
	}
	if blocked > 0 && !pk.stopped {
		return pk.Now(), fmt.Errorf("%w (%d blocked)", ErrDeadlock, blocked)
	}
	return pk.Now(), pk.err
}

// Stop requests that the run halt. From model code the request takes
// effect at the enclosing window's barrier: the stopping shard halts
// immediately, the others finish the window — so, unlike everything else
// about the partitioned kernel, post-Stop side effects may differ from
// the serial kernel's (which halts instantly).
func (pk *ParKernel) Stop() {
	pk.stopped = true
	for _, k := range pk.parts {
		k.stopped = true
	}
}

// Err returns the run's first recorded error.
func (pk *ParKernel) Err() error { return pk.err }

// shutdown kills shard processes and activities shard by shard in index
// order, then stops the workers.
func (pk *ParKernel) shutdown() {
	for _, k := range pk.parts {
		k.shutdown()
		if k.err != nil && pk.err == nil {
			pk.err = k.err
		}
	}
	pk.Close()
}

// InfLookahead is the lookahead for partitions that never communicate
// during a drain: the whole run becomes a single window.
func InfLookahead() Time { return math.Inf(1) }
