package sim

// Tests of the partitioned kernel (parallel.go): byte-identical
// trajectories against the serial kernel for mixed Proc+Activity models
// across worker counts and partition assignments — the partitioned
// extension of TestActivityProcTraceEquivalence — plus the window
// mechanics (incremental Advance, infinite lookahead, lookahead
// violation surfacing, deadlock parity) and the queue empty-pop
// contract's kernel-facing consequences. Run under -race these tests
// also prove the window discipline keeps shard state single-threaded.

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/rng"
)

// copyState is one replicated model copy: a resource contended by mixed
// proc/activity workers, and a ping counter bumped only by cross-copy
// deliveries (so it exercises the barrier merge when copies land on
// different partitions).
type copyState struct {
	g     int
	res   *Resource
	pings int
}

// bumpPing is the cross-copy delivery callback; it runs on the
// destination copy's kernel.
func bumpPing(arg any) { arg.(*copyState).pings++ }

// pinger sends a timed ping to the next copy between plan-driven waits.
// The ping delay never drops below the declared lookahead of 1.
type pinger struct {
	dst     *copyState
	dstPart int
	waits   []Time
	i       int
}

func (p *pinger) Step(a *ActCtx) {
	if p.i > 0 {
		a.Kernel().Send(p.dstPart, 1+Time(p.i%3), bumpPing, p.dst)
	}
	if p.i >= len(p.waits) {
		a.Exit()
		return
	}
	a.Wait(p.waits[p.i])
	p.i++
}

// buildCopy constructs copy g on kernel k: even-index workers are
// processes, odd-index workers are activities, all contending one FIFO
// resource.
func buildCopy(k *Kernel, g, capacity int, plans []workerPlan) *copyState {
	cs := &copyState{g: g}
	cs.res = NewResource(k, fmt.Sprintf("g%d/res", g), capacity, FIFO)
	for i := range plans {
		pl := &plans[i]
		name := fmt.Sprintf("g%d/w%d", g, i)
		if i%2 == 0 {
			r := cs.res
			k.Spawn(name, func(c *Context) {
				for j := range pl.waits {
					c.Wait(pl.waits[j])
					r.Acquire(c)
					c.Wait(pl.holds[j])
					r.Release(1)
				}
			})
		} else {
			k.SpawnActivity(name, &planWorker{pl: pl, r: cs.res})
		}
	}
	return cs
}

// parModelSpec is one generated workload: per-copy worker plans and ping
// waits, all pre-drawn so every run consumes identical numbers.
type parModelSpec struct {
	copies   int
	capacity int
	plans    [][]workerPlan
	pings    [][]Time
}

func makeParModel(seed uint64, copies, workers, steps, pings int) parModelSpec {
	spec := parModelSpec{copies: copies, capacity: 1 + int(seed%3)}
	st := rng.New(seed ^ 0x9e3779b97f4a7c15)
	for g := 0; g < copies; g++ {
		spec.plans = append(spec.plans, makePlans(seed+uint64(g)*7919, workers, steps))
		pw := make([]Time, pings)
		for i := range pw {
			pw[i] = 0.5 + st.Exp(2)
		}
		spec.pings = append(spec.pings, pw)
	}
	return spec
}

// buildParModel lays the spec's copies out across the given per-copy
// kernels (all the same kernel for a serial run) and wires the ping ring.
func buildParModel(spec parModelSpec, kfor func(g int) *Kernel, partOf func(g int) int) []*copyState {
	states := make([]*copyState, spec.copies)
	for g := 0; g < spec.copies; g++ {
		states[g] = buildCopy(kfor(g), g, spec.capacity, spec.plans[g])
	}
	for g := 0; g < spec.copies; g++ {
		dst := (g + 1) % spec.copies
		kfor(g).SpawnActivity(fmt.Sprintf("g%d/ping", g), &pinger{
			dst: states[dst], dstPart: partOf(dst), waits: spec.pings[g],
		})
	}
	return states
}

// parRunResult is everything a run exposes for the byte-identity check.
type parRunResult struct {
	traces [][]traceEvent // per partition (one entry for the serial run)
	grants []int64
	pings  []int
	now    Time
	seq    uint64
}

func runParModelSerial(spec parModelSpec) (parRunResult, error) {
	k := NewKernel()
	rec := &recTracer{}
	k.Tracer = rec
	states := buildParModel(spec, func(int) *Kernel { return k }, func(int) int { return 0 })
	now, err := k.RunUntilIdle()
	res := parRunResult{traces: [][]traceEvent{rec.events}, now: now, seq: k.seq}
	for _, cs := range states {
		res.grants = append(res.grants, cs.res.Grants())
		res.pings = append(res.pings, cs.pings)
	}
	return res, err
}

func runParModelPartitioned(spec parModelSpec, parts, workers int, assign func(g int) int) (parRunResult, error) {
	pk := NewParKernel(parts, workers, 1)
	recs := make([]*recTracer, parts)
	for i := 0; i < parts; i++ {
		recs[i] = &recTracer{}
		pk.Part(i).Tracer = recs[i]
	}
	states := buildParModel(spec, func(g int) *Kernel { return pk.Part(assign(g)) }, assign)
	now, err := pk.RunUntilIdle()
	// Shards draw setup and between-window seqs from the shared counter
	// (including the single-partition case, which bypasses the window
	// machinery entirely), so pk.seq is the run's final schedule counter.
	res := parRunResult{now: now, seq: pk.seq}
	for _, r := range recs {
		res.traces = append(res.traces, r.events)
	}
	for _, cs := range states {
		res.grants = append(res.grants, cs.res.Grants())
		res.pings = append(res.pings, cs.pings)
	}
	return res, err
}

// copyOfTrack extracts the copy index from a "g<N>/..." track name.
func copyOfTrack(track string) int {
	rest := strings.TrimPrefix(track, "g")
	i := strings.IndexByte(rest, '/')
	g, err := strconv.Atoi(rest[:i])
	if err != nil {
		panic("unparseable track " + track)
	}
	return g
}

// filterTrace restricts a serial trace to the copies a partition owns.
func filterTrace(events []traceEvent, parts int, assign func(g int) int, part int) []traceEvent {
	out := []traceEvent{}
	for _, e := range events {
		if assign(copyOfTrack(e.track)) == part {
			out = append(out, e)
		}
	}
	return out
}

// parAssignments is the partition-assignment corpus for model copies:
// contiguous blocks and strided round-robin.
func parAssignments(copies, parts int) map[string]func(g int) int {
	return map[string]func(g int) int{
		"contig":  func(g int) int { return g * parts / copies },
		"strided": func(g int) int { return g % parts },
	}
}

// TestParKernelTraceEquivalence is the partitioned extension of
// TestActivityProcTraceEquivalence: the same mixed Proc+Activity model,
// replicated and wired into a cross-partition ping ring, produces the
// serial kernel's exact trajectory — per-partition traces equal to the
// serial trace restricted to each partition's copies, identical grant
// and ping counts, identical final time, and an identical final value of
// the schedule counter (the sharpest witness that the barrier's replay
// renumbering reproduced every serial sequence number) — for every
// tested partition count, worker count, and assignment function.
func TestParKernelTraceEquivalence(t *testing.T) {
	const copies = 8
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		spec := makeParModel(seed, copies, 4, 6, 10)
		want, err := runParModelSerial(spec)
		if err != nil {
			t.Fatalf("seed %d: serial run: %v", seed, err)
		}
		for _, parts := range []int{1, 2, 4, 7} {
			for aname, assign := range parAssignments(copies, parts) {
				for _, workers := range []int{1, 2, parts} {
					name := fmt.Sprintf("seed%d/p%d/%s/w%d", seed, parts, aname, workers)
					t.Run(name, func(t *testing.T) {
						got, err := runParModelPartitioned(spec, parts, workers, assign)
						if err != nil {
							t.Fatal(err)
						}
						if got.now != want.now {
							t.Fatalf("final time %g, serial %g", got.now, want.now)
						}
						if got.seq != want.seq {
							t.Fatalf("final schedule counter %d, serial %d", got.seq, want.seq)
						}
						for g := 0; g < copies; g++ {
							if got.grants[g] != want.grants[g] {
								t.Fatalf("copy %d grants %d, serial %d", g, got.grants[g], want.grants[g])
							}
							if got.pings[g] != want.pings[g] {
								t.Fatalf("copy %d pings %d, serial %d", g, got.pings[g], want.pings[g])
							}
						}
						for p := 0; p < parts; p++ {
							ref := filterTrace(want.traces[0], parts, assign, p)
							if !tracesEqual(got.traces[p], ref) {
								t.Fatalf("partition %d trace diverges from serial restriction (%d vs %d events)",
									p, len(got.traces[p]), len(ref))
							}
						}
					})
				}
			}
		}
	}
}

// TestParKernelAdvanceIncremental: driving the partitioned run through
// repeated Advance windows (with an explicit Close) reaches the same
// state as one big Advance and as the serial kernel.
func TestParKernelAdvanceIncremental(t *testing.T) {
	spec := makeParModel(11, 6, 3, 5, 8)
	assign := func(g int) int { return g % 3 }

	run := func(steps []Time) (int, Time) {
		pk := NewParKernel(3, 3, 1)
		states := buildParModel(spec, func(g int) *Kernel { return pk.Part(assign(g)) }, assign)
		for _, until := range steps {
			if err := pk.Advance(until); err != nil {
				t.Fatal(err)
			}
			if pk.Now() != until {
				t.Fatalf("Now = %g after Advance(%g)", pk.Now(), until)
			}
		}
		pk.Close()
		total := 0
		for _, cs := range states {
			total += cs.pings
		}
		return total, pk.Now()
	}

	var chunks []Time
	for u := Time(4); u <= 60; u += 4 {
		chunks = append(chunks, u)
	}
	gotPings, gotNow := run(chunks)
	wantPings, wantNow := run([]Time{60})
	if gotPings != wantPings || gotNow != wantNow {
		t.Fatalf("incremental Advance: %d pings at %g, one-shot: %d pings at %g",
			gotPings, gotNow, wantPings, wantNow)
	}
}

// TestParKernelInfiniteLookahead: partitions that never communicate may
// declare an infinite lookahead — the run collapses into one window and
// still matches the serial kernel exactly.
func TestParKernelInfiniteLookahead(t *testing.T) {
	spec := makeParModel(21, 6, 4, 6, 0)
	spec.pings = make([][]Time, spec.copies) // no cross traffic at all

	sk := NewKernel()
	serialStates := make([]*copyState, spec.copies)
	for g := 0; g < spec.copies; g++ {
		serialStates[g] = buildCopy(sk, g, spec.capacity, spec.plans[g])
	}
	wantNow, err := sk.RunUntilIdle()
	if err != nil {
		t.Fatal(err)
	}

	pk := NewParKernel(4, 4, InfLookahead())
	assign := func(g int) int { return g % 4 }
	states := make([]*copyState, spec.copies)
	for g := 0; g < spec.copies; g++ {
		states[g] = buildCopy(pk.Part(assign(g)), g, spec.capacity, spec.plans[g])
	}
	gotNow, err := pk.RunUntilIdle()
	if err != nil {
		t.Fatal(err)
	}
	if gotNow != wantNow {
		t.Fatalf("final time %g, serial %g", gotNow, wantNow)
	}
	for g := range states {
		if states[g].res.Grants() != serialStates[g].res.Grants() {
			t.Fatalf("copy %d grants %d, serial %d", g, states[g].res.Grants(), serialStates[g].res.Grants())
		}
	}
}

// TestParKernelSendLookaheadViolation: a cross-partition Send below the
// declared lookahead is a model bug; it surfaces as the run's error, not
// a crash, and names both partitions.
func TestParKernelSendLookaheadViolation(t *testing.T) {
	pk := NewParKernel(2, 2, 5)
	k1 := pk.Part(1)
	k1.Schedule(1, func() {
		k1.Send(0, 2, func(any) {}, nil) // delay 2 < lookahead 5
	})
	_, err := pk.RunUntilIdle()
	if err == nil || !strings.Contains(err.Error(), "below declared lookahead") {
		t.Fatalf("err = %v, want lookahead violation", err)
	}
}

// TestParKernelDeadlockParity: a starved process on one shard reports
// ErrDeadlock exactly as the serial kernel does.
func TestParKernelDeadlockParity(t *testing.T) {
	build := func(k *Kernel) {
		s := NewStore[int](k, "empty")
		k.Spawn("starved", func(c *Context) { s.Get(c) })
	}
	sk := NewKernel()
	build(sk)
	if _, err := sk.RunUntilIdle(); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("serial err = %v, want ErrDeadlock", err)
	}
	pk := NewParKernel(3, 2, 1)
	build(pk.Part(1))
	if _, err := pk.RunUntilIdle(); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("partitioned err = %v, want ErrDeadlock", err)
	}
}

// TestParKernelSetupSend: cross-partition Sends made while the run is
// single-threaded (model setup, between Advance windows) deliver
// directly with exact sequence numbers.
func TestParKernelSetupSend(t *testing.T) {
	pk := NewParKernel(2, 2, 1)
	var got []string
	pk.Part(0).Send(1, 3, func(arg any) { got = append(got, arg.(string)) }, "setup")
	if err := pk.Advance(10); err != nil {
		t.Fatal(err)
	}
	pk.Part(1).Send(0, 2, func(arg any) { got = append(got, arg.(string)) }, "between")
	if err := pk.Advance(20); err != nil {
		t.Fatal(err)
	}
	pk.Close()
	if len(got) != 2 || got[0] != "setup" || got[1] != "between" {
		t.Fatalf("deliveries = %v", got)
	}
}
