package sim

import (
	"errors"
	"fmt"
)

// ErrInterrupted is returned from interruptible waits (Sleep) when another
// process calls Interrupt on the sleeping process.
var ErrInterrupted = errors.New("sim: interrupted")

// killSentinel unwinds a process goroutine when the kernel kills it at the
// end of a run. It never escapes the process wrapper.
type killSentinel struct{}

// Proc is one simulated process (a "transaction" in SES/Workbench terms).
type Proc struct {
	k       *Kernel
	id      int64
	name    string
	fn      func(*Context)
	wake    chan struct{}
	started bool
	done    bool
	killed  bool
	// cancel deregisters the process from whatever wait structure it is
	// blocked on (resource queue, store, signal); non-nil only while parked
	// in a cancellable wait.
	cancel func()
	// interrupted is set by Interrupt and consumed by Sleep.
	interrupted bool
}

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Done reports whether the process has finished.
func (p *Proc) Done() bool { return p.done }

// Context is the handle a process body uses to interact with the kernel.
// A Context is only valid inside its own process goroutine.
type Context struct {
	k *Kernel
	p *Proc
}

// Spawn creates a process that starts at the current simulated time.
// The returned Proc may be used with Interrupt.
func (k *Kernel) Spawn(name string, fn func(*Context)) *Proc {
	return k.SpawnAt(k.now, name, fn)
}

// SpawnAt creates a process that starts at absolute simulated time t.
func (k *Kernel) SpawnAt(t Time, name string, fn func(*Context)) *Proc {
	p := &Proc{
		k:    k,
		id:   k.nextID,
		name: name,
		fn:   fn,
		wake: make(chan struct{}, 1),
	}
	k.nextID++
	k.addProc(p)
	if t < k.now {
		panic(fmt.Sprintf("sim: SpawnAt(%g) before now (%g)", t, k.now))
	}
	k.scheduleEvent(t, nil, p)
	return p
}

// main is the process goroutine body: runs fn, recovers the kill sentinel,
// records model panics, and passes the logical thread on — directly to the
// next due event's process when there is one, to the controller otherwise.
func (p *Proc) main() {
	defer func() {
		r := recover()
		p.done = true
		p.k.live--
		if r != nil {
			if _, isKill := r.(killSentinel); !isKill {
				if p.k.err == nil {
					p.k.err = fmt.Errorf("sim: process %q panicked: %v", p.name, r)
				}
				// Stop the run so the error surfaces promptly.
				p.k.stopped = true
			}
		}
		p.k.trace(p.k.now, p.name, "done")
		if p.k.dispatch(nil) == exhausted {
			p.k.yield <- struct{}{}
		}
	}()
	p.k.trace(p.k.now, p.name, "start")
	p.fn(&Context{k: p.k, p: p})
}

// park blocks the calling process until it is resumed. Must be called with
// any necessary wait registration (p.cancel) already in place. The parking
// goroutine keeps driving the dispatch loop itself: if the next due event
// resumes this very process, park returns with no channel traffic at all;
// if it resumes another process, the logical thread is handed to it in one
// channel operation; only when nothing is due does control return to the
// controller.
func (p *Proc) park() {
	switch p.k.dispatch(p) {
	case resumedSelf:
		// Direct continuation — the next event was this process's own.
	case handedOff:
		<-p.wake
	case exhausted:
		p.k.yield <- struct{}{}
		<-p.wake
	}
	if p.killed {
		panic(killSentinel{})
	}
}

// Now returns the current simulated time.
func (c *Context) Now() Time { return c.k.now }

// Kernel returns the kernel this context belongs to, for spawning or
// scheduling from inside a process.
func (c *Context) Kernel() *Kernel { return c.k }

// Proc returns the process handle for this context.
func (c *Context) Proc() *Proc { return c.p }

// Name returns the process name.
func (c *Context) Name() string { return c.p.name }

// Wait advances this process's local time by d (>= 0). It is
// uninterruptible: only end-of-run kill unwinds it.
func (c *Context) Wait(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: Wait with negative duration %g", d))
	}
	c.k.trace(c.k.now, c.p.name, "wait")
	c.k.scheduleResume(c.p, d)
	c.p.park()
	c.k.trace(c.k.now, c.p.name, "run")
}

// WaitUntil blocks until absolute simulated time t (>= now).
func (c *Context) WaitUntil(t Time) {
	c.Wait(t - c.k.now)
}

// Sleep is an interruptible wait: it returns nil after d simulated time, or
// ErrInterrupted (early) if another process calls Interrupt on this one.
func (c *Context) Sleep(d Time) error {
	if d < 0 {
		panic(fmt.Sprintf("sim: Sleep with negative duration %g", d))
	}
	timer := c.k.scheduleResumeTimer(c.p, d)
	c.p.cancel = func() { timer.Cancel() }
	c.p.park()
	c.p.cancel = nil
	if c.p.interrupted {
		c.p.interrupted = false
		return ErrInterrupted
	}
	return nil
}

// Interrupt wakes target early if it is blocked in an interruptible wait
// (Sleep). It reports whether an interrupt was delivered. Interrupting a
// process that is not interruptibly blocked is a no-op returning false.
func (k *Kernel) Interrupt(target *Proc) bool {
	if target.done || target.cancel == nil {
		return false
	}
	target.cancel()
	target.cancel = nil
	target.interrupted = true
	k.scheduleEvent(k.now, nil, target)
	return true
}

// Yield lets every other event scheduled at the current instant run before
// this process continues (equivalent to Wait(0), named for intent).
func (c *Context) Yield() { c.Wait(0) }

// Spawn starts a child process at the current time. Purely a convenience
// for c.Kernel().Spawn.
func (c *Context) Spawn(name string, fn func(*Context)) *Proc {
	return c.k.Spawn(name, fn)
}
