package sim

// Property-based tests of kernel invariants under randomized workloads:
// resource conservation, store conservation, clock monotonicity, and
// schedule-order stability.

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// TestResourceConservationProperty: for any random mix of jobs, a resource
// never exceeds its capacity, never goes negative, and every grant is
// eventually released (acquire count == release count at quiescence).
func TestResourceConservationProperty(t *testing.T) {
	err := quick.Check(func(seed uint64, capRaw, jobsRaw uint8) bool {
		capacity := 1 + int(capRaw%8)
		jobs := 1 + int(jobsRaw%40)
		st := rng.New(seed)
		k := NewKernel()
		r := NewResource(k, "res", capacity, FIFO)
		violations := 0
		releases := 0
		for j := 0; j < jobs; j++ {
			n := 1 + st.Intn(capacity)
			delay := st.Exp(5)
			hold := st.Exp(3)
			k.SpawnAt(delay, "job", func(c *Context) {
				r.AcquireN(c, n, 0)
				if r.InUse() > r.Capacity() || r.InUse() < 0 {
					violations++
				}
				c.Wait(hold)
				r.Release(n)
				releases++
			})
		}
		if _, err := k.RunUntilIdle(); err != nil {
			return false
		}
		return violations == 0 && releases == jobs && r.InUse() == 0
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

// TestStoreConservationProperty: items put equals items got plus items
// still buffered, for any interleaving.
func TestStoreConservationProperty(t *testing.T) {
	err := quick.Check(func(seed uint64, putsRaw, getsRaw uint8) bool {
		nPuts := 1 + int(putsRaw%50)
		nGets := 1 + int(getsRaw%50)
		st := rng.New(seed)
		k := NewKernel()
		s := NewStore[int](k, "box")
		got := 0
		for i := 0; i < nPuts; i++ {
			v := i
			k.SpawnAt(st.Exp(3), "put", func(c *Context) { s.Put(c, v) })
		}
		for i := 0; i < nGets; i++ {
			k.SpawnAt(st.Exp(3), "get", func(c *Context) {
				_ = s.Get(c)
				got++
			})
		}
		// Run bounded: excess getters stay blocked and are killed.
		if err := k.Run(1e7); err != nil {
			return false
		}
		expectedGot := nGets
		if nPuts < nGets {
			expectedGot = nPuts
		}
		return got == expectedGot && s.Size() == nPuts-expectedGot &&
			int(s.Puts()) == nPuts && int(s.Gets()) == expectedGot
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

// TestClockMonotonicityProperty: a process observes non-decreasing time
// across arbitrary waits and resource interactions.
func TestClockMonotonicityProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		st := rng.New(seed)
		k := NewKernel()
		r := NewResource(k, "res", 2, FIFO)
		ok := true
		for i := 0; i < 10; i++ {
			k.Spawn("p", func(c *Context) {
				last := c.Now()
				for step := 0; step < 20; step++ {
					switch st.Intn(3) {
					case 0:
						c.Wait(st.Exp(2))
					case 1:
						r.Acquire(c)
						c.Wait(st.Exp(1))
						r.Release(1)
					case 2:
						c.Yield()
					}
					if c.Now() < last {
						ok = false
					}
					last = c.Now()
				}
			})
		}
		if _, err := k.RunUntilIdle(); err != nil {
			return false
		}
		return ok
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

// TestFIFOOrderProperty: under FIFO, grant order equals enqueue order for
// single-unit requests, regardless of arrival pattern.
func TestFIFOOrderProperty(t *testing.T) {
	err := quick.Check(func(seed uint64, jobsRaw uint8) bool {
		jobs := 2 + int(jobsRaw%30)
		st := rng.New(seed)
		k := NewKernel()
		r := NewResource(k, "res", 1, FIFO)
		type rec struct {
			arrival Time
			index   int
		}
		var grants []rec
		for j := 0; j < jobs; j++ {
			j := j
			at := st.Exp(1)
			k.SpawnAt(at, "job", func(c *Context) {
				arr := c.Now()
				r.Acquire(c)
				grants = append(grants, rec{arrival: arr, index: j})
				c.Wait(st.Exp(4))
				r.Release(1)
			})
		}
		if _, err := k.RunUntilIdle(); err != nil {
			return false
		}
		for i := 1; i < len(grants); i++ {
			if grants[i].arrival < grants[i-1].arrival {
				return false
			}
		}
		return len(grants) == jobs
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

// TestWorkConservationProperty: a single-server resource with queued work
// never idles — total busy time equals total demanded service when demand
// exceeds the horizon.
func TestWorkConservationProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		st := rng.New(seed)
		k := NewKernel()
		r := NewResource(k, "res", 1, FIFO)
		// Offer 2x the horizon in service demand, all arriving at t=0.
		const horizon = 1000.0
		demand := 0.0
		for demand < 2*horizon {
			d := st.Exp(20)
			demand += d
			k.Spawn("job", func(c *Context) {
				r.Acquire(c)
				c.Wait(d)
				r.Release(1)
			})
		}
		if err := k.Run(horizon); err != nil {
			return false
		}
		util := r.Utilization(horizon)
		return util > 0.999
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}
