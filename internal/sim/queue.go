package sim

// This file factors the kernel's event ordering behind a small
// eventQueue interface — the groundwork for conservative parallel
// execution of a single run (ROADMAP item 1, the machine backend's
// isa.runParallel counterpart for the DES kernel). partitionedQueue
// holds one 4-ary eventHeap per partition and pops through a merge
// front: the global minimum over the partition heads. Because (t, seq)
// is a strict total order (seq is the kernel's unique schedule counter),
// the merge front is deterministic and the pop sequence is byte-identical
// to a single heap for every partition count and assignment function —
// the property tests in queue_test.go are the proof. The Kernel itself
// keeps a concrete *eventHeap: the PR 3 hot-path overhaul de-interfaced
// the ~33 ns Schedule path deliberately, so the partitioned kernel
// (parallel.go) aliases each shard kernel's events field to one partition
// of a partitionedQueue instead of re-virtualizing the serial paths; the
// queue's merge front then serves as the coordinator's global-minimum
// (next window base) scan.

// eventQueue is the kernel's event-ordering contract: push any number of
// events, pop them in strictly ascending (t, seq) order. pop on an empty
// queue returns nil — explicitly, in both implementations (the
// partitioned queue used to forward front() == -1 straight into a slice
// index, turning "empty" into an opaque bounds panic where the single
// heap's behavior differed; the contract test in queue_test.go pins the
// two to the same answer). peek returns the next event without removing
// it, nil when empty.
type eventQueue interface {
	push(*event)
	pop() *event
	peek() *event
	size() int
}

var (
	_ eventQueue = (*eventHeap)(nil)
	_ eventQueue = (*partitionedQueue)(nil)
)

// peek returns the minimum event without removing it, nil when empty.
func (q *eventHeap) peek() *event {
	if len(*q) == 0 {
		return nil
	}
	return (*q)[0]
}

// size returns the number of queued events.
func (q *eventHeap) size() int { return len(*q) }

// partitionedQueue distributes events over per-partition 4-ary heaps by
// an assignment function (by processor, by node, by shard — any total
// function of the event) and merges at pop time by scanning the
// partition heads. Pops cost O(partitions + log(size/partitions));
// pushes stay O(log(size/partitions)) and touch only the owning
// partition — the property a parallel kernel needs so concurrent
// partitions can schedule without contending on one heap.
type partitionedQueue struct {
	parts  []eventHeap
	assign func(*event) int
	n      int
}

// newPartitionedQueue creates a queue of the given partition count.
// Assignment values outside [0, parts) are folded into partition 0 so
// the queue stays total over every event.
func newPartitionedQueue(parts int, assign func(*event) int) *partitionedQueue {
	if parts < 1 {
		parts = 1
	}
	return &partitionedQueue{parts: make([]eventHeap, parts), assign: assign}
}

func (q *partitionedQueue) push(ev *event) {
	p := q.assign(ev)
	if p < 0 || p >= len(q.parts) {
		p = 0
	}
	q.parts[p].push(ev)
	q.n++
}

// front returns the index of the partition holding the global (t, seq)
// minimum, -1 when every partition is empty.
func (q *partitionedQueue) front() int {
	best := -1
	var bt Time
	var bseq uint64
	for i := range q.parts {
		h := q.parts[i]
		if len(h) == 0 {
			continue
		}
		ev := h[0]
		if best < 0 || ev.t < bt || (ev.t == bt && ev.seq < bseq) {
			best, bt, bseq = i, ev.t, ev.seq
		}
	}
	return best
}

func (q *partitionedQueue) pop() *event {
	i := q.front()
	if i < 0 {
		return nil
	}
	q.n--
	return q.parts[i].pop()
}

func (q *partitionedQueue) peek() *event {
	i := q.front()
	if i < 0 {
		return nil
	}
	return q.parts[i][0]
}

func (q *partitionedQueue) size() int { return q.n }
