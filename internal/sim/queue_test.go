package sim

// Property tests of the partitioned event queue against the single
// 4-ary heap: for arbitrary randomized schedules — duplicate
// timestamps, interleaved pushes and pops — and for every partition
// count and assignment function tried, both eventQueue implementations
// must pop the identical event sequence. Together with heap_test.go
// (single heap == container/heap) this chains the partitioned queue all
// the way to the original reference ordering, so a future partitioned
// kernel preserves byte-identical trajectories by construction.

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// assigners is the partition-assignment corpus: by schedule order, by
// coarse time bucket (so whole partitions go quiet and the merge front
// skips them), hash-scattered, everything-in-one (degenerate), and
// out-of-range (exercises the fold-to-zero clamp).
func assigners(parts int) map[string]func(*event) int {
	return map[string]func(*event) int{
		"by-seq":  func(ev *event) int { return int(ev.seq) % parts },
		"by-time": func(ev *event) int { return int(ev.t) % parts },
		"hashed": func(ev *event) int {
			sm := rng.SplitMix64{State: ev.seq*2654435761 + uint64(ev.t)}
			return int(sm.Next() % uint64(parts))
		},
		"constant":     func(ev *event) int { return 0 },
		"out-of-range": func(ev *event) int { return int(ev.seq)%parts + parts },
	}
}

// TestPartitionedQueueMatchesSingleHeap: pushing one randomized schedule
// into the single heap and into partitioned queues of several widths and
// assignments, then draining, yields the identical pop sequence.
func TestPartitionedQueueMatchesSingleHeap(t *testing.T) {
	for _, parts := range []int{1, 2, 3, 5, 8} {
		for name, assign := range assigners(parts) {
			t.Run(fmt.Sprintf("p%d/%s", parts, name), func(t *testing.T) {
				err := quick.Check(func(seed uint64, sizeRaw uint16) bool {
					n := 1 + int(sizeRaw%400)
					st := rng.New(seed)
					var ref eventHeap
					pq := newPartitionedQueue(parts, assign)
					for i := 0; i < n; i++ {
						// Coarse timestamps force plenty of (t, seq) ties.
						ev := &event{t: Time(st.Intn(16)), seq: uint64(i)}
						ref.push(ev)
						pq.push(ev)
					}
					if pq.size() != ref.size() {
						return false
					}
					for i := 0; i < n; i++ {
						if pq.peek() != ref.peek() {
							return false
						}
						if pq.pop() != ref.pop() {
							return false
						}
					}
					return pq.size() == 0 && pq.peek() == nil
				}, &quick.Config{MaxCount: 60})
				if err != nil {
					t.Error(err)
				}
			})
		}
	}
}

// TestPartitionedQueueInterleaved: arbitrary interleavings of pushes and
// pops — the dispatch loop's shape, where firing events schedule new
// ones — agree with the single heap at every step.
func TestPartitionedQueueInterleaved(t *testing.T) {
	const parts = 4
	for name, assign := range assigners(parts) {
		t.Run(name, func(t *testing.T) {
			err := quick.Check(func(seed uint64, opsRaw uint16) bool {
				ops := 10 + int(opsRaw%1500)
				st := rng.New(seed)
				var ref eventHeap
				pq := newPartitionedQueue(parts, assign)
				now := Time(0)
				seq := uint64(0)
				for i := 0; i < ops; i++ {
					if pq.size() != ref.size() {
						return false
					}
					if ref.size() == 0 || st.Float64() < 0.55 {
						// Causal schedule: never before the virtual clock.
						ev := &event{t: now + Time(st.Intn(8)), seq: seq}
						seq++
						ref.push(ev)
						pq.push(ev)
						continue
					}
					want := ref.pop()
					if got := pq.pop(); got != want {
						return false
					}
					now = want.t
				}
				return true
			}, &quick.Config{MaxCount: 40})
			if err != nil {
				t.Error(err)
			}
		})
	}
}

// TestEventQueueEmptyPopContract pins the empty-queue contract across
// both implementations: pop and peek on an empty queue return nil — the
// partitioned queue used to forward its front() == -1 sentinel straight
// into a slice index, turning "empty" into an opaque bounds panic — and
// draining to empty then popping again behaves the same way, with the
// size and the merge front intact afterwards.
func TestEventQueueEmptyPopContract(t *testing.T) {
	impls := map[string]func() eventQueue{
		"heap": func() eventQueue { return &eventHeap{} },
		"partitioned": func() eventQueue {
			return newPartitionedQueue(3, func(ev *event) int { return int(ev.seq) % 3 })
		},
	}
	for name, mk := range impls {
		t.Run(name, func(t *testing.T) {
			q := mk()
			if got := q.pop(); got != nil {
				t.Fatalf("pop on empty = %v, want nil", got)
			}
			if got := q.peek(); got != nil {
				t.Fatalf("peek on empty = %v, want nil", got)
			}
			// Fill, drain to empty, pop once more: still nil, not a panic,
			// and the queue stays usable.
			for i := 0; i < 7; i++ {
				q.push(&event{t: Time(i % 3), seq: uint64(i)})
			}
			for q.size() > 0 {
				if q.pop() == nil {
					t.Fatal("pop returned nil with events queued")
				}
			}
			if got := q.pop(); got != nil {
				t.Fatalf("pop after drain = %v, want nil", got)
			}
			if q.size() != 0 {
				t.Fatalf("size after empty pops = %d, want 0", q.size())
			}
			q.push(&event{t: 1, seq: 99})
			if ev := q.pop(); ev == nil || ev.seq != 99 {
				t.Fatalf("queue unusable after empty pops: got %v", ev)
			}
		})
	}
}

// TestEventQueueInterfaceConformance drives both implementations through
// the eventQueue interface itself, so the interface's contract — not
// just the concrete methods — is what the ordering proof covers.
func TestEventQueueInterfaceConformance(t *testing.T) {
	drain := func(q eventQueue, n int, seed uint64) []uint64 {
		st := rng.New(seed)
		for i := 0; i < n; i++ {
			q.push(&event{t: Time(st.Intn(12)), seq: uint64(i)})
		}
		var order []uint64
		for q.size() > 0 {
			p := q.peek()
			ev := q.pop()
			if p != ev {
				t.Fatal("peek disagrees with pop")
			}
			order = append(order, ev.seq)
		}
		return order
	}
	const n, seed = 300, 99
	single := drain(&eventHeap{}, n, seed)
	part := drain(newPartitionedQueue(3, func(ev *event) int { return int(ev.seq) % 3 }), n, seed)
	if len(single) != n || len(part) != n {
		t.Fatalf("drained %d and %d of %d", len(single), len(part), n)
	}
	for i := range single {
		if single[i] != part[i] {
			t.Fatalf("pop %d: single heap seq %d, partitioned seq %d", i, single[i], part[i])
		}
	}
}
