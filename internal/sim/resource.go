package sim

import (
	"fmt"

	"repro/internal/stats"
)

// Discipline selects the queueing discipline of a Resource.
type Discipline int

// Queueing disciplines.
const (
	FIFO     Discipline = iota // first come, first served
	LIFO                       // last come, first served
	Priority                   // lowest priority value first; FIFO within equal priority
)

func (d Discipline) String() string {
	switch d {
	case FIFO:
		return "FIFO"
	case LIFO:
		return "LIFO"
	case Priority:
		return "Priority"
	default:
		return fmt.Sprintf("Discipline(%d)", int(d))
	}
}

// Resource is a counted resource (server pool, memory port, link) with a
// wait queue. It corresponds to the "service node" primitive of the paper's
// SES/Workbench models. Utilization and queue length are tracked as
// time-weighted statistics; waiting time as a plain sample.
type Resource struct {
	k          *Kernel
	name       string
	capacity   int
	inUse      int
	discipline Discipline
	queue      []*resWaiter

	// Util is the time-weighted number of busy units; Util.Mean(now) /
	// capacity is the classical utilization ρ.
	Util stats.TimeWeighted
	// QueueLen is the time-weighted number of waiting requests.
	QueueLen stats.TimeWeighted
	// WaitTime samples the time each request spent queued before service.
	WaitTime stats.Sample

	grants int64 // total successful acquisitions
}

// resWaiter is one queued acquisition — by a process (p) or an activity
// (a). Process waiters are allocated per block; activity waiters are
// embedded in the ActCtx (an activity blocks on at most one resource at a
// time), so the activity path does not allocate.
type resWaiter struct {
	p       *Proc
	a       *ActCtx
	n       int
	prio    float64
	since   Time
	granted bool
	removed bool
}

// NewResource creates a resource with the given capacity and discipline.
// Capacity must be positive.
func NewResource(k *Kernel, name string, capacity int, d Discipline) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: NewResource %q with capacity %d", name, capacity))
	}
	r := &Resource{k: k, name: name, capacity: capacity, discipline: d}
	r.Util.Set(k.now, 0)
	r.QueueLen.Set(k.now, 0)
	return r
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the total number of units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// Free returns the number of available units.
func (r *Resource) Free() int { return r.capacity - r.inUse }

// QueueLength returns the number of requests currently waiting.
func (r *Resource) QueueLength() int { return len(r.queue) }

// Grants returns the number of acquisitions granted so far.
func (r *Resource) Grants() int64 { return r.grants }

// Acquire obtains one unit, blocking in queue order if none is free.
func (r *Resource) Acquire(c *Context) { r.AcquireN(c, 1, 0) }

// AcquireN obtains n units with the given priority (lower is served first
// under the Priority discipline; ignored otherwise). It blocks until
// granted.
func (r *Resource) AcquireN(c *Context, n int, prio float64) {
	if n <= 0 || n > r.capacity {
		panic(fmt.Sprintf("sim: AcquireN(%d) on resource %q with capacity %d", n, r.name, r.capacity))
	}
	now := c.k.now
	if len(r.queue) == 0 && r.capacity-r.inUse >= n {
		r.take(n, now)
		r.WaitTime.Add(0)
		return
	}
	w := &resWaiter{p: c.p, n: n, prio: prio, since: now}
	r.enqueue(w)
	r.QueueLen.Set(now, float64(len(r.queue)))
	c.p.cancel = func() { r.remove(w) }
	c.p.park()
	c.p.cancel = nil
	if !w.granted {
		// Interrupted out of the queue before being granted; surface as a
		// model bug because resource waits are not interruptible.
		panic(fmt.Sprintf("sim: process %q resumed in resource %q queue without grant", c.p.name, r.name))
	}
	r.WaitTime.Add(c.k.now - w.since)
}

// Acquire1Act is AcquireAct for the common single-unit, zero-priority
// case.
func (r *Resource) Acquire1Act(a *ActCtx) bool { return r.AcquireAct(a, 1, 0) }

// AcquireAct is the activity-mode acquire: when n units are free (and
// nobody queues ahead) it takes them and returns true — the caller holds
// the resource and continues inline. Otherwise it registers the activity
// in the queue and returns false; the caller's Step must return, and the
// activity is stepped again holding the grant (the same queue, discipline,
// and FIFO fairness as the blocking AcquireN, allocation-free).
func (r *Resource) AcquireAct(a *ActCtx, n int, prio float64) bool {
	if n <= 0 || n > r.capacity {
		panic(fmt.Sprintf("sim: AcquireAct(%d) on resource %q with capacity %d", n, r.name, r.capacity))
	}
	now := r.k.now
	if len(r.queue) == 0 && r.capacity-r.inUse >= n {
		r.take(n, now)
		r.WaitTime.Add(0)
		return true
	}
	r.k.blockAct(a)
	w := &a.rw
	w.n, w.prio, w.since = n, prio, now
	w.granted, w.removed = false, false
	r.enqueue(w)
	r.QueueLen.Set(now, float64(len(r.queue)))
	return false
}

// TryAcquire obtains n units without blocking; it reports success.
func (r *Resource) TryAcquire(c *Context, n int) bool {
	if n <= 0 || n > r.capacity {
		panic(fmt.Sprintf("sim: TryAcquire(%d) on resource %q with capacity %d", n, r.name, r.capacity))
	}
	if len(r.queue) == 0 && r.capacity-r.inUse >= n {
		r.take(n, c.k.now)
		r.WaitTime.Add(0)
		return true
	}
	return false
}

// Release returns n units and dispatches queued waiters.
func (r *Resource) Release(n int) {
	if n <= 0 || n > r.inUse {
		panic(fmt.Sprintf("sim: Release(%d) on resource %q with %d in use", n, r.name, r.inUse))
	}
	r.inUse -= n
	r.Util.Set(r.k.now, float64(r.inUse))
	r.dispatch()
}

func (r *Resource) take(n int, now Time) {
	r.inUse += n
	r.grants++
	r.Util.Set(now, float64(r.inUse))
}

func (r *Resource) enqueue(w *resWaiter) {
	switch r.discipline {
	case FIFO:
		r.queue = append(r.queue, w)
	case LIFO:
		r.queue = append([]*resWaiter{w}, r.queue...)
	case Priority:
		// Stable insert: after all waiters with priority <= w.prio.
		idx := len(r.queue)
		for i, q := range r.queue {
			if q.prio > w.prio {
				idx = i
				break
			}
		}
		r.queue = append(r.queue, nil)
		copy(r.queue[idx+1:], r.queue[idx:])
		r.queue[idx] = w
	default:
		panic(fmt.Sprintf("sim: unknown discipline %v", r.discipline))
	}
}

// remove deregisters a waiter (kill-cancel path).
func (r *Resource) remove(w *resWaiter) {
	if w.removed || w.granted {
		return
	}
	for i, q := range r.queue {
		if q == w {
			r.queue = append(r.queue[:i], r.queue[i+1:]...)
			w.removed = true
			r.QueueLen.Set(r.k.now, float64(len(r.queue)))
			return
		}
	}
}

// dispatch grants queued requests while units are available. Grants respect
// the queue head strictly (no bypassing a large request with a small one),
// which keeps FIFO fairness exact.
func (r *Resource) dispatch() {
	for len(r.queue) > 0 {
		head := r.queue[0]
		if r.capacity-r.inUse < head.n {
			return
		}
		r.queue, _ = PopFront(r.queue)
		r.QueueLen.Set(r.k.now, float64(len(r.queue)))
		head.granted = true
		r.take(head.n, r.k.now)
		if head.a != nil {
			// Activity grant: the wait ends now, so the waiting-time sample
			// lands here (the blocking path records the same value after
			// its same-time resumption).
			r.WaitTime.Add(r.k.now - head.since)
			r.k.resumeBlockedAct(head.a)
			continue
		}
		p := head.p
		r.k.scheduleEvent(r.k.now, nil, p)
	}
}

// Utilization returns the mean fraction of capacity busy over the run.
func (r *Resource) Utilization(now Time) float64 {
	return r.Util.Mean(now) / float64(r.capacity)
}

// ResetStats restarts all statistics at time t (warm-up truncation).
func (r *Resource) ResetStats(t Time) {
	r.Util.Reset(t)
	r.QueueLen.Reset(t)
	r.WaitTime = stats.Sample{}
	r.grants = 0
}
