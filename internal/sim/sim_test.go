package sim

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestScheduleOrdering(t *testing.T) {
	k := NewKernel()
	var order []int
	k.Schedule(5, func() { order = append(order, 2) })
	k.Schedule(1, func() { order = append(order, 1) })
	k.Schedule(5, func() { order = append(order, 3) }) // same time: schedule order
	if err := k.Run(10); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("got %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("got %v, want %v", order, want)
		}
	}
	if k.Now() != 10 {
		t.Errorf("Now() = %g, want 10", k.Now())
	}
}

func TestScheduleAtPastPanics(t *testing.T) {
	k := NewKernel()
	k.Schedule(5, func() {})
	if err := k.Run(5); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	k.ScheduleAt(1, func() {})
}

func TestTimerCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	tm := k.Schedule(5, func() { fired = true })
	if !tm.Cancel() {
		t.Fatal("first Cancel should succeed")
	}
	if tm.Cancel() {
		t.Fatal("second Cancel should report false")
	}
	if err := k.Run(10); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("canceled timer fired")
	}
}

func TestProcessWait(t *testing.T) {
	k := NewKernel()
	var times []Time
	k.Spawn("p", func(c *Context) {
		times = append(times, c.Now())
		c.Wait(3)
		times = append(times, c.Now())
		c.Wait(4)
		times = append(times, c.Now())
	})
	if err := k.Run(100); err != nil {
		t.Fatal(err)
	}
	want := []Time{0, 3, 7}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestSpawnAt(t *testing.T) {
	k := NewKernel()
	var start Time = -1
	k.SpawnAt(42, "late", func(c *Context) { start = c.Now() })
	if err := k.Run(100); err != nil {
		t.Fatal(err)
	}
	if start != 42 {
		t.Errorf("process started at %g, want 42", start)
	}
}

func TestRunKillsBlockedProcesses(t *testing.T) {
	k := NewKernel()
	reached := false
	k.Spawn("sleeper", func(c *Context) {
		c.Wait(1000)
		reached = true // must never run: killed at t=10
	})
	if err := k.Run(10); err != nil {
		t.Fatal(err)
	}
	if reached {
		t.Fatal("killed process continued past end of run")
	}
	if k.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d after Run", k.LiveProcs())
	}
}

func TestProcessPanicPropagates(t *testing.T) {
	k := NewKernel()
	k.Spawn("bad", func(c *Context) {
		c.Wait(1)
		panic("model bug")
	})
	err := k.Run(10)
	if err == nil {
		t.Fatal("expected error from panicking process")
	}
}

func TestRunUntilIdle(t *testing.T) {
	k := NewKernel()
	var end Time
	k.Spawn("p", func(c *Context) {
		c.Wait(7)
		end = c.Now()
	})
	final, err := k.RunUntilIdle()
	if err != nil {
		t.Fatal(err)
	}
	if end != 7 || final != 7 {
		t.Errorf("end=%g final=%g, want 7", end, final)
	}
}

func TestRunUntilIdleDeadlock(t *testing.T) {
	k := NewKernel()
	sig := NewSignal(k, "never")
	k.Spawn("stuck", func(c *Context) { sig.Wait(c) })
	_, err := k.RunUntilIdle()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestResourceMutualExclusion(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "cpu", 1, FIFO)
	var maxConc, conc int
	for i := 0; i < 5; i++ {
		k.Spawn("worker", func(c *Context) {
			r.Acquire(c)
			conc++
			if conc > maxConc {
				maxConc = conc
			}
			c.Wait(2)
			conc--
			r.Release(1)
		})
	}
	if _, err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if maxConc != 1 {
		t.Errorf("max concurrency %d on capacity-1 resource", maxConc)
	}
	if r.Grants() != 5 {
		t.Errorf("grants = %d, want 5", r.Grants())
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "cpu", 1, FIFO)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		k.SpawnAt(Time(i), "w", func(c *Context) {
			r.Acquire(c)
			order = append(order, i)
			c.Wait(10)
			r.Release(1)
		})
	}
	if _, err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("FIFO order violated: %v", order)
		}
	}
}

func TestResourceLIFOOrder(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "cpu", 1, LIFO)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		k.SpawnAt(Time(i), "w", func(c *Context) {
			r.Acquire(c)
			order = append(order, i)
			c.Wait(10)
			r.Release(1)
		})
	}
	if _, err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	// First arrival (t=0) grabs the idle server; the rest queue and are
	// served newest-first: 0, 3, 2, 1.
	want := []int{0, 3, 2, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("LIFO order = %v, want %v", order, want)
		}
	}
}

func TestResourcePriorityOrder(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "cpu", 1, Priority)
	var order []int
	prios := []float64{3, 1, 2}
	for i := 0; i < 3; i++ {
		i := i
		k.SpawnAt(Time(i)+1, "w", func(c *Context) {
			r.AcquireN(c, 1, prios[i])
			order = append(order, i)
			c.Wait(10)
			r.Release(1)
		})
	}
	// A holder occupies the resource while the three contenders arrive.
	k.Spawn("holder", func(c *Context) {
		r.Acquire(c)
		c.Wait(5)
		r.Release(1)
	})
	if _, err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 0} // priorities 1, 2, 3
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("priority order = %v, want %v", order, want)
		}
	}
}

func TestResourceNUnitGrants(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "mem", 4, FIFO)
	var events []string
	k.Spawn("big", func(c *Context) {
		r.AcquireN(c, 3, 0)
		events = append(events, "big+")
		c.Wait(10)
		r.Release(3)
		events = append(events, "big-")
	})
	k.SpawnAt(1, "bigger", func(c *Context) {
		r.AcquireN(c, 4, 0) // must wait for all 4
		events = append(events, "bigger+")
		r.Release(4)
	})
	k.SpawnAt(2, "small", func(c *Context) {
		r.Acquire(c) // 1 unit free, but must not bypass FIFO head
		events = append(events, "small+")
		r.Release(1)
	})
	if _, err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	want := []string{"big+", "big-", "bigger+", "small+"}
	if len(events) != len(want) {
		t.Fatalf("events = %v", events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
}

func TestTryAcquire(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "cpu", 1, FIFO)
	var got []bool
	k.Spawn("p", func(c *Context) {
		got = append(got, r.TryAcquire(c, 1)) // true
		got = append(got, r.TryAcquire(c, 1)) // false: busy
		r.Release(1)
		got = append(got, r.TryAcquire(c, 1)) // true again
		r.Release(1)
	})
	if _, err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if !got[0] || got[1] || !got[2] {
		t.Errorf("TryAcquire sequence = %v, want [true false true]", got)
	}
}

func TestResourceUtilization(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "cpu", 1, FIFO)
	k.Spawn("p", func(c *Context) {
		r.Acquire(c)
		c.Wait(30)
		r.Release(1)
	})
	if err := k.Run(100); err != nil {
		t.Fatal(err)
	}
	if u := r.Utilization(k.Now()); math.Abs(u-0.3) > 1e-12 {
		t.Errorf("utilization = %g, want 0.3", u)
	}
}

func TestStoreFIFO(t *testing.T) {
	k := NewKernel()
	s := NewStore[int](k, "box")
	var got []int
	k.Spawn("consumer", func(c *Context) {
		for i := 0; i < 3; i++ {
			got = append(got, s.Get(c))
		}
	})
	k.Spawn("producer", func(c *Context) {
		for i := 1; i <= 3; i++ {
			c.Wait(1)
			s.Put(c, i)
		}
	})
	if _, err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	for i, v := range []int{1, 2, 3} {
		if got[i] != v {
			t.Fatalf("got %v", got)
		}
	}
}

func TestStoreGetBlocksUntilPut(t *testing.T) {
	k := NewKernel()
	s := NewStore[string](k, "box")
	var when Time
	k.Spawn("consumer", func(c *Context) {
		_ = s.Get(c)
		when = c.Now()
	})
	k.SpawnAt(9, "producer", func(c *Context) { s.Put(c, "x") })
	if _, err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if when != 9 {
		t.Errorf("Get unblocked at %g, want 9", when)
	}
}

func TestBoundedStorePutBlocks(t *testing.T) {
	k := NewKernel()
	s := NewBoundedStore[int](k, "box", 2)
	var putDone Time = -1
	k.Spawn("producer", func(c *Context) {
		s.Put(c, 1)
		s.Put(c, 2)
		s.Put(c, 3) // blocks until a Get
		putDone = c.Now()
	})
	k.SpawnAt(5, "consumer", func(c *Context) { _ = s.Get(c) })
	if _, err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if putDone != 5 {
		t.Errorf("third Put completed at %g, want 5", putDone)
	}
	if s.Size() != 2 {
		t.Errorf("store size = %d, want 2", s.Size())
	}
}

func TestTryPutTryGet(t *testing.T) {
	k := NewKernel()
	s := NewBoundedStore[int](k, "box", 1)
	k.Spawn("p", func(c *Context) {
		if !s.TryPut(7) {
			t.Error("TryPut into empty bounded store failed")
		}
		if s.TryPut(8) {
			t.Error("TryPut into full store succeeded")
		}
		v, ok := s.TryGet(c)
		if !ok || v != 7 {
			t.Errorf("TryGet = (%d, %v), want (7, true)", v, ok)
		}
		if _, ok := s.TryGet(c); ok {
			t.Error("TryGet from empty store succeeded")
		}
	})
	if _, err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
}

func TestSignalBroadcast(t *testing.T) {
	k := NewKernel()
	sig := NewSignal(k, "go")
	var woke []Time
	for i := 0; i < 3; i++ {
		k.Spawn("waiter", func(c *Context) {
			sig.Wait(c)
			woke = append(woke, c.Now())
		})
	}
	k.SpawnAt(4, "trigger", func(c *Context) { sig.Trigger() })
	if _, err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(woke) != 3 {
		t.Fatalf("woke %d waiters, want 3", len(woke))
	}
	for _, w := range woke {
		if w != 4 {
			t.Errorf("waiter woke at %g, want 4", w)
		}
	}
	// Wait after trigger returns immediately.
	k2 := NewKernel()
	sig2 := NewSignal(k2, "done")
	sig2.Trigger()
	var at Time = -1
	k2.Spawn("late", func(c *Context) {
		sig2.Wait(c)
		at = c.Now()
	})
	if _, err := k2.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if at != 0 {
		t.Errorf("late waiter returned at %g, want 0", at)
	}
}

func TestWaitGroupJoin(t *testing.T) {
	k := NewKernel()
	wg := NewWaitGroup(k, "join", 3)
	var joined Time = -1
	for i := 1; i <= 3; i++ {
		d := Time(i * 10)
		k.Spawn("w", func(c *Context) {
			c.Wait(d)
			wg.Done()
		})
	}
	k.Spawn("joiner", func(c *Context) {
		wg.Wait(c)
		joined = c.Now()
	})
	if _, err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if joined != 30 {
		t.Errorf("join completed at %g, want 30", joined)
	}
}

func TestSleepInterrupt(t *testing.T) {
	k := NewKernel()
	var result error
	var when Time
	p := k.Spawn("sleeper", func(c *Context) {
		result = c.Sleep(100)
		when = c.Now()
	})
	k.SpawnAt(5, "waker", func(c *Context) {
		if !c.Kernel().Interrupt(p) {
			t.Error("Interrupt reported no delivery")
		}
	})
	if _, err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if result != ErrInterrupted {
		t.Errorf("Sleep returned %v, want ErrInterrupted", result)
	}
	if when != 5 {
		t.Errorf("interrupted at %g, want 5", when)
	}
}

func TestSleepUninterrupted(t *testing.T) {
	k := NewKernel()
	var result error = ErrInterrupted
	k.Spawn("sleeper", func(c *Context) { result = c.Sleep(4) })
	if _, err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if result != nil {
		t.Errorf("Sleep returned %v, want nil", result)
	}
}

func TestInterruptNonBlockedIsNoop(t *testing.T) {
	k := NewKernel()
	p := k.Spawn("runner", func(c *Context) { c.Wait(10) })
	delivered := true
	k.SpawnAt(1, "waker", func(c *Context) {
		delivered = c.Kernel().Interrupt(p) // p is in Wait, not Sleep
	})
	if _, err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if delivered {
		t.Error("Interrupt on uninterruptible Wait reported delivery")
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed uint64) []float64 {
		k := NewKernel()
		r := NewResource(k, "cpu", 2, FIFO)
		st := rng.New(seed)
		var finish []float64
		for i := 0; i < 50; i++ {
			k.Spawn("job", func(c *Context) {
				c.Wait(st.Exp(3))
				r.Acquire(c)
				c.Wait(st.Exp(5))
				r.Release(1)
				finish = append(finish, c.Now())
			})
		}
		if _, err := k.RunUntilIdle(); err != nil {
			t.Fatal(err)
		}
		return finish
	}
	a, b := run(12345), run(12345)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trajectory diverged at %d: %g vs %g", i, a[i], b[i])
		}
	}
	c := run(54321)
	same := true
	for i := range a {
		if i >= len(c) || a[i] != c[i] {
			same = false
			break
		}
	}
	if same && len(a) == len(c) {
		t.Error("different seeds produced identical trajectories")
	}
}

func TestYieldRunsSameTimeEvents(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Spawn("a", func(c *Context) {
		order = append(order, "a1")
		c.Yield()
		order = append(order, "a2")
	})
	k.Spawn("b", func(c *Context) {
		order = append(order, "b1")
	})
	if _, err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestStopEndsRun(t *testing.T) {
	k := NewKernel()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count == 5 {
			k.Stop()
			return
		}
		k.Schedule(1, tick)
	}
	k.Schedule(1, tick)
	if err := k.Run(1000); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if k.Now() != 5 {
		t.Errorf("Now = %g, want 5", k.Now())
	}
}

func TestNegativeWaitPanics(t *testing.T) {
	k := NewKernel()
	k.Spawn("bad", func(c *Context) { c.Wait(-1) })
	if err := k.Run(1); err == nil {
		t.Fatal("expected error from negative Wait")
	}
}

func TestResourceQueueStats(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "cpu", 1, FIFO)
	// Two jobs: first holds [0,10], second arrives at 0 and waits 10.
	k.Spawn("first", func(c *Context) {
		r.Acquire(c)
		c.Wait(10)
		r.Release(1)
	})
	k.Spawn("second", func(c *Context) {
		r.Acquire(c)
		c.Wait(10)
		r.Release(1)
	})
	if _, err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if w := r.WaitTime.Max(); math.Abs(w-10) > 1e-9 {
		t.Errorf("max wait = %g, want 10", w)
	}
	// Average queue length over [0,20]: one waiter during [0,10] = 0.5.
	if ql := r.QueueLen.Mean(k.Now()); math.Abs(ql-0.5) > 1e-9 {
		t.Errorf("mean queue length = %g, want 0.5", ql)
	}
}

func TestStaleTimerCannotCancelRecycledEvent(t *testing.T) {
	// After an event fires, its struct returns to the free list and may be
	// reused by the next Schedule. A Timer held across the firing must not
	// cancel the struct's next tenant.
	k := NewKernel()
	var fired []string
	tm := k.Schedule(1, func() { fired = append(fired, "a") })
	if _, err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	k.Schedule(1, func() { fired = append(fired, "b") })
	if tm.Cancel() {
		t.Error("stale Timer claimed to cancel a recycled event")
	}
	if _, err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[1] != "b" {
		t.Errorf("fired = %v, want [a b]", fired)
	}
}

func TestCanceledEventRecycledAndReused(t *testing.T) {
	// A canceled event is collected dead and recycled; subsequent
	// schedules reuse it and run normally.
	k := NewKernel()
	ran := 0
	tm := k.Schedule(1, func() { t.Error("canceled event ran") })
	if !tm.Cancel() {
		t.Fatal("cancel failed")
	}
	for i := 0; i < 100; i++ {
		k.Schedule(float64(i), func() { ran++ })
	}
	if _, err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if ran != 100 {
		t.Errorf("ran = %d, want 100", ran)
	}
}

func TestShutdownReKillsProcessParkingInDefer(t *testing.T) {
	// A process whose deferred cleanup blocks again (Wait in a defer) must
	// be re-killed until it fully unwinds — one defer level per kill pass.
	k := NewKernel()
	cleanupRan := false
	k.Spawn("p", func(c *Context) {
		defer func() { cleanupRan = true }()
		defer func() { c.Wait(100) }() // parks again during kill unwinding
		c.Wait(1000)
	})
	if err := k.Run(10); err != nil {
		t.Fatal(err)
	}
	if !cleanupRan {
		t.Fatal("outer defer never ran: process leaked blocked in its deferred Wait")
	}
	if k.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d after Run", k.LiveProcs())
	}
}

func TestShutdownKillsProcsSpawnedInDefers(t *testing.T) {
	// Dying processes may Spawn in their defers (the roster grows
	// mid-shutdown, and with enough processes the compaction threshold is
	// in play); every process — original and defer-spawned — must unwind.
	k := NewKernel()
	const n = 80
	finished := 0
	for i := 0; i < n; i++ {
		i := i
		k.Spawn("p", func(c *Context) {
			defer func() { finished++ }()
			if i < 4 {
				defer func() {
					c.Kernel().Spawn("late", func(lc *Context) {
						defer func() { finished++ }()
						lc.Wait(1e9)
					})
				}()
			}
			c.Wait(1e9)
		})
	}
	if err := k.Run(10); err != nil {
		t.Fatal(err)
	}
	if want := n + 4; finished != want {
		t.Fatalf("finished = %d processes, want %d (leak during shutdown)", finished, want)
	}
	if k.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d after Run", k.LiveProcs())
	}
}

func TestNestedRunFromCallbackErrors(t *testing.T) {
	// Run/Advance from inside the simulation would clobber the active
	// drain window and can deadlock the handoff protocol; it must surface
	// as a run error, never hang.
	k := NewKernel()
	k.Schedule(1, func() { _ = k.Advance(50) })
	err := k.Run(10)
	if err == nil {
		t.Fatal("nested Advance from a callback did not error")
	}

	k2 := NewKernel()
	k2.Spawn("p", func(c *Context) {
		c.Wait(1)
		_ = c.Kernel().Run(50)
	})
	if err := k2.Run(10); err == nil {
		t.Fatal("nested Run from a process did not error")
	}
}
