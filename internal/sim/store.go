package sim

import (
	"fmt"

	"repro/internal/stats"
)

// Store is a FIFO buffer of items of type T with optional capacity bound.
// Get blocks while the store is empty; Put blocks while it is full (if
// bounded). It is the kernel's message-queue primitive: mailboxes, parcel
// queues, and work pools are all Stores.
type Store[T any] struct {
	k        *Kernel
	name     string
	capacity int // 0 = unbounded
	items    []T
	getters  []*storeWaiter[T]
	putters  []*putWaiter[T]

	// Len is the time-weighted number of buffered items.
	Len stats.TimeWeighted
	// GetWait samples how long each Get blocked.
	GetWait stats.Sample

	puts, gets int64
}

type storeWaiter[T any] struct {
	p       *Proc
	item    T
	granted bool
	since   Time
}

type putWaiter[T any] struct {
	p       *Proc
	item    T
	granted bool
}

// NewStore creates an unbounded store.
func NewStore[T any](k *Kernel, name string) *Store[T] {
	return NewBoundedStore[T](k, name, 0)
}

// NewBoundedStore creates a store holding at most capacity items
// (capacity 0 means unbounded).
func NewBoundedStore[T any](k *Kernel, name string, capacity int) *Store[T] {
	if capacity < 0 {
		panic(fmt.Sprintf("sim: NewBoundedStore %q with negative capacity", name))
	}
	s := &Store[T]{k: k, name: name, capacity: capacity}
	s.Len.Set(k.now, 0)
	return s
}

// Name returns the store name.
func (s *Store[T]) Name() string { return s.name }

// Size returns the current number of buffered items.
func (s *Store[T]) Size() int { return len(s.items) }

// Puts returns the total number of completed Put operations.
func (s *Store[T]) Puts() int64 { return s.puts }

// Gets returns the total number of completed Get operations.
func (s *Store[T]) Gets() int64 { return s.gets }

// Put adds an item, blocking while a bounded store is full.
func (s *Store[T]) Put(c *Context, item T) {
	if s.capacity > 0 && len(s.items) >= s.capacity {
		w := &putWaiter[T]{p: c.p, item: item}
		s.putters = append(s.putters, w)
		c.p.cancel = func() { s.removePutter(w) }
		c.p.park()
		c.p.cancel = nil
		if !w.granted {
			panic(fmt.Sprintf("sim: process %q resumed in store %q put queue without grant", c.p.name, s.name))
		}
		return
	}
	s.deposit(item)
}

// TryPut adds an item without blocking; it reports success. For unbounded
// stores it always succeeds.
func (s *Store[T]) TryPut(item T) bool {
	if s.capacity > 0 && len(s.items) >= s.capacity {
		return false
	}
	s.deposit(item)
	return true
}

// deposit inserts the item, serving a blocked getter directly if any.
func (s *Store[T]) deposit(item T) {
	s.puts++
	if len(s.getters) > 0 {
		g := s.getters[0]
		s.getters = s.getters[1:]
		g.item = item
		g.granted = true
		s.gets++
		p := g.p
		s.k.scheduleEvent(s.k.now, nil, p)
		return
	}
	s.items = append(s.items, item)
	s.Len.Set(s.k.now, float64(len(s.items)))
}

// Get removes and returns the oldest item, blocking while the store is
// empty.
func (s *Store[T]) Get(c *Context) T {
	if len(s.items) > 0 {
		return s.takeHead(c)
	}
	w := &storeWaiter[T]{p: c.p, since: c.k.now}
	s.getters = append(s.getters, w)
	c.p.cancel = func() { s.removeGetter(w) }
	c.p.park()
	c.p.cancel = nil
	if !w.granted {
		panic(fmt.Sprintf("sim: process %q resumed in store %q get queue without item", c.p.name, s.name))
	}
	s.GetWait.Add(c.k.now - w.since)
	return w.item
}

// TryGet removes and returns the oldest item without blocking.
func (s *Store[T]) TryGet(c *Context) (T, bool) {
	if len(s.items) == 0 {
		var zero T
		return zero, false
	}
	return s.takeHead(c), true
}

func (s *Store[T]) takeHead(c *Context) T {
	item := s.items[0]
	s.items = s.items[1:]
	s.gets++
	s.GetWait.Add(0)
	s.Len.Set(c.k.now, float64(len(s.items)))
	s.admitPutter()
	return item
}

// admitPutter unblocks one waiting putter after space opens up.
func (s *Store[T]) admitPutter() {
	if len(s.putters) == 0 {
		return
	}
	if s.capacity > 0 && len(s.items) >= s.capacity {
		return
	}
	w := s.putters[0]
	s.putters = s.putters[1:]
	w.granted = true
	s.items = append(s.items, w.item)
	s.Len.Set(s.k.now, float64(len(s.items)))
	p := w.p
	s.k.scheduleEvent(s.k.now, nil, p)
}

func (s *Store[T]) removeGetter(w *storeWaiter[T]) {
	for i, g := range s.getters {
		if g == w {
			s.getters = append(s.getters[:i], s.getters[i+1:]...)
			return
		}
	}
}

func (s *Store[T]) removePutter(w *putWaiter[T]) {
	for i, g := range s.putters {
		if g == w {
			s.putters = append(s.putters[:i], s.putters[i+1:]...)
			return
		}
	}
}

// Signal is a one-shot broadcast event: processes that Wait before Trigger
// block; Trigger releases all of them and subsequent Waits return
// immediately.
type Signal struct {
	k         *Kernel
	name      string
	triggered bool
	waiters   []*Proc
}

// NewSignal creates an untriggered signal.
func NewSignal(k *Kernel, name string) *Signal {
	return &Signal{k: k, name: name}
}

// Triggered reports whether the signal has fired.
func (s *Signal) Triggered() bool { return s.triggered }

// Wait blocks until the signal fires (returns immediately if it already
// has).
func (s *Signal) Wait(c *Context) {
	if s.triggered {
		return
	}
	s.waiters = append(s.waiters, c.p)
	p := c.p
	c.p.cancel = func() {
		for i, q := range s.waiters {
			if q == p {
				s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
				return
			}
		}
	}
	c.p.park()
	c.p.cancel = nil
}

// Trigger fires the signal, waking all waiters at the current time.
// Triggering twice is a no-op.
func (s *Signal) Trigger() {
	if s.triggered {
		return
	}
	s.triggered = true
	ws := s.waiters
	s.waiters = nil
	for _, p := range ws {
		p := p
		s.k.scheduleEvent(s.k.now, nil, p)
	}
}

// WaitGroup counts down from an initial count; Wait blocks until the count
// reaches zero. It is the join primitive used for fork/join workloads such
// as the paper's Fig. 4 thread timeline.
type WaitGroup struct {
	sig   *Signal
	count int
}

// NewWaitGroup creates a WaitGroup with the given initial count (>= 0).
// A zero count is already done.
func NewWaitGroup(k *Kernel, name string, count int) *WaitGroup {
	if count < 0 {
		panic("sim: NewWaitGroup with negative count")
	}
	wg := &WaitGroup{sig: NewSignal(k, name), count: count}
	if count == 0 {
		wg.sig.Trigger()
	}
	return wg
}

// Done decrements the count, triggering completion at zero.
func (wg *WaitGroup) Done() {
	if wg.count <= 0 {
		panic("sim: WaitGroup.Done below zero")
	}
	wg.count--
	if wg.count == 0 {
		wg.sig.Trigger()
	}
}

// Wait blocks until the count reaches zero.
func (wg *WaitGroup) Wait(c *Context) { wg.sig.Wait(c) }

// Count returns the remaining count.
func (wg *WaitGroup) Count() int { return wg.count }
