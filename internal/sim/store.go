package sim

import (
	"fmt"

	"repro/internal/stats"
)

// Store is a FIFO buffer of items of type T with optional capacity bound.
// Get blocks while the store is empty; Put blocks while it is full (if
// bounded). It is the kernel's message-queue primitive: mailboxes, parcel
// queues, and work pools are all Stores.
type Store[T any] struct {
	k        *Kernel
	name     string
	capacity int // 0 = unbounded
	items    []T
	getters  []*storeWaiter[T]
	putters  []*putWaiter[T]
	// freeGetW/freePutW recycle activity waiters (see storeWaiter).
	freeGetW []*storeWaiter[T]
	freePutW []*putWaiter[T]

	// Len is the time-weighted number of buffered items.
	Len stats.TimeWeighted
	// GetWait samples how long each Get blocked.
	GetWait stats.Sample

	puts, gets int64
}

// storeWaiter is one blocked Get — by a process (p) or an activity (a).
// Activity waiters are recycled through the store's free list, so the
// activity get path does not allocate at steady state.
type storeWaiter[T any] struct {
	p *Proc
	a *ActCtx
	// owner pins an activity waiter to the store that registered it, so a
	// GetAct on a different store of the same element type cannot collect
	// it by accident.
	owner   *Store[T]
	item    T
	granted bool
	since   Time
}

type putWaiter[T any] struct {
	p       *Proc
	a       *ActCtx
	item    T
	granted bool
}

// NewStore creates an unbounded store.
func NewStore[T any](k *Kernel, name string) *Store[T] {
	return NewBoundedStore[T](k, name, 0)
}

// NewBoundedStore creates a store holding at most capacity items
// (capacity 0 means unbounded).
func NewBoundedStore[T any](k *Kernel, name string, capacity int) *Store[T] {
	if capacity < 0 {
		panic(fmt.Sprintf("sim: NewBoundedStore %q with negative capacity", name))
	}
	s := &Store[T]{k: k, name: name, capacity: capacity}
	s.Len.Set(k.now, 0)
	return s
}

// Name returns the store name.
func (s *Store[T]) Name() string { return s.name }

// Size returns the current number of buffered items.
func (s *Store[T]) Size() int { return len(s.items) }

// Puts returns the total number of completed Put operations.
func (s *Store[T]) Puts() int64 { return s.puts }

// Gets returns the total number of completed Get operations.
func (s *Store[T]) Gets() int64 { return s.gets }

// Put adds an item, blocking while a bounded store is full.
func (s *Store[T]) Put(c *Context, item T) {
	if s.capacity > 0 && len(s.items) >= s.capacity {
		w := &putWaiter[T]{p: c.p, item: item}
		s.putters = append(s.putters, w)
		c.p.cancel = func() { s.removePutter(w) }
		c.p.park()
		c.p.cancel = nil
		if !w.granted {
			panic(fmt.Sprintf("sim: process %q resumed in store %q put queue without grant", c.p.name, s.name))
		}
		return
	}
	s.deposit(item)
}

// TryPut adds an item without blocking; it reports success. For unbounded
// stores it always succeeds.
func (s *Store[T]) TryPut(item T) bool {
	if s.capacity > 0 && len(s.items) >= s.capacity {
		return false
	}
	s.deposit(item)
	return true
}

// deposit inserts the item, serving a blocked getter directly if any.
func (s *Store[T]) deposit(item T) {
	s.puts++
	if len(s.getters) > 0 {
		var g *storeWaiter[T]
		s.getters, g = PopFront(s.getters)
		g.item = item
		g.granted = true
		s.gets++
		if g.a != nil {
			s.k.resumeBlockedAct(g.a)
			return
		}
		p := g.p
		s.k.scheduleEvent(s.k.now, nil, p)
		return
	}
	s.items = append(s.items, item)
	s.Len.Set(s.k.now, float64(len(s.items)))
}

// Get removes and returns the oldest item, blocking while the store is
// empty.
func (s *Store[T]) Get(c *Context) T {
	if len(s.items) > 0 {
		return s.takeHead()
	}
	w := &storeWaiter[T]{p: c.p, since: c.k.now}
	s.getters = append(s.getters, w)
	c.p.cancel = func() { s.removeGetter(w) }
	c.p.park()
	c.p.cancel = nil
	if !w.granted {
		panic(fmt.Sprintf("sim: process %q resumed in store %q get queue without item", c.p.name, s.name))
	}
	s.GetWait.Add(c.k.now - w.since)
	return w.item
}

// TryGet removes and returns the oldest item without blocking.
func (s *Store[T]) TryGet(c *Context) (T, bool) {
	if len(s.items) == 0 {
		var zero T
		return zero, false
	}
	return s.takeHead(), true
}

// GetAct is the activity-mode get. Fast path: an item is buffered, it is
// taken and returned inline with ok true. Slow path: the store is empty,
// the activity is registered as a getter and (zero, false) returns; when
// an item arrives the activity is stepped again, and that step's GetAct
// call collects the delivered item (ok true). Between the registering call
// and the collecting call the activity must not interact with any other
// store. Steady-state allocation-free: activity waiters are recycled.
func (s *Store[T]) GetAct(a *ActCtx) (T, bool) {
	if w, ok := a.wslot.(*storeWaiter[T]); ok {
		if w.owner != s {
			panic(fmt.Sprintf("sim: activity %q called store %q GetAct with a wait in flight on store %q", a.name, s.name, w.owner.name))
		}
		if !w.granted {
			panic(fmt.Sprintf("sim: activity %q re-entered store %q GetAct without a delivery", a.name, s.name))
		}
		item := w.item
		s.GetWait.Add(s.k.now - w.since)
		a.wslot = nil
		var zero T
		w.item, w.a, w.owner, w.granted = zero, nil, nil, false
		s.freeGetW = append(s.freeGetW, w)
		return item, true
	}
	if len(s.items) > 0 {
		return s.takeHead(), true
	}
	s.k.blockAct(a)
	var w *storeWaiter[T]
	if n := len(s.freeGetW); n > 0 {
		w = s.freeGetW[n-1]
		s.freeGetW[n-1] = nil
		s.freeGetW = s.freeGetW[:n-1]
	} else {
		w = &storeWaiter[T]{}
	}
	w.a, w.owner, w.since = a, s, s.k.now
	s.getters = append(s.getters, w)
	a.wslot = w
	var zero T
	return zero, false
}

// PutAct is the activity-mode put. It deposits immediately (returning
// true) unless a bounded store is full, in which case the activity is
// registered as a putter and false returns; the item is deposited when
// space opens and the activity is stepped again — the resumption itself
// is the acknowledgement, no collecting call is needed.
func (s *Store[T]) PutAct(a *ActCtx, item T) bool {
	if s.capacity > 0 && len(s.items) >= s.capacity {
		s.k.blockAct(a)
		var w *putWaiter[T]
		if n := len(s.freePutW); n > 0 {
			w = s.freePutW[n-1]
			s.freePutW[n-1] = nil
			s.freePutW = s.freePutW[:n-1]
		} else {
			w = &putWaiter[T]{}
		}
		w.a, w.item, w.granted = a, item, false
		s.putters = append(s.putters, w)
		return false
	}
	s.deposit(item)
	return true
}

func (s *Store[T]) takeHead() T {
	var item T
	s.items, item = PopFront(s.items)
	s.gets++
	s.GetWait.Add(0)
	s.Len.Set(s.k.now, float64(len(s.items)))
	s.admitPutter()
	return item
}

// admitPutter unblocks one waiting putter after space opens up.
func (s *Store[T]) admitPutter() {
	if len(s.putters) == 0 {
		return
	}
	if s.capacity > 0 && len(s.items) >= s.capacity {
		return
	}
	var w *putWaiter[T]
	s.putters, w = PopFront(s.putters)
	w.granted = true
	s.items = append(s.items, w.item)
	s.Len.Set(s.k.now, float64(len(s.items)))
	if w.a != nil {
		s.k.resumeBlockedAct(w.a)
		var zero T
		w.item, w.a = zero, nil
		s.freePutW = append(s.freePutW, w)
		return
	}
	p := w.p
	s.k.scheduleEvent(s.k.now, nil, p)
}

func (s *Store[T]) removeGetter(w *storeWaiter[T]) {
	for i, g := range s.getters {
		if g == w {
			s.getters = append(s.getters[:i], s.getters[i+1:]...)
			return
		}
	}
}

func (s *Store[T]) removePutter(w *putWaiter[T]) {
	for i, g := range s.putters {
		if g == w {
			s.putters = append(s.putters[:i], s.putters[i+1:]...)
			return
		}
	}
}

// Signal is a one-shot broadcast event: processes and activities that
// Wait before Trigger block; Trigger releases all of them and subsequent
// Waits return immediately. Reset rearms a fired signal for reuse.
type Signal struct {
	k         *Kernel
	name      string
	triggered bool
	waiters   []sigWaiter
}

// sigWaiter is one blocked waiter — a process or an activity. A single
// list keeps the release order equal to the registration order across the
// two execution modes.
type sigWaiter struct {
	p *Proc
	a *ActCtx
}

// NewSignal creates an untriggered signal.
func NewSignal(k *Kernel, name string) *Signal {
	return &Signal{k: k, name: name}
}

// Triggered reports whether the signal has fired.
func (s *Signal) Triggered() bool { return s.triggered }

// Wait blocks until the signal fires (returns immediately if it already
// has).
func (s *Signal) Wait(c *Context) {
	if s.triggered {
		return
	}
	s.waiters = append(s.waiters, sigWaiter{p: c.p})
	p := c.p
	c.p.cancel = func() {
		for i, q := range s.waiters {
			if q.p == p {
				s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
				return
			}
		}
	}
	c.p.park()
	c.p.cancel = nil
}

// WaitAct is the activity-mode wait: true when the signal already fired
// (continue inline); false when the activity was registered — it is
// stepped again when Trigger fires. Allocation-free at steady state (the
// waiter list keeps its capacity across Reset cycles).
func (s *Signal) WaitAct(a *ActCtx) bool {
	if s.triggered {
		return true
	}
	s.k.blockAct(a)
	s.waiters = append(s.waiters, sigWaiter{a: a})
	return false
}

// Trigger fires the signal, waking all waiters at the current time in
// registration order. Triggering twice is a no-op.
func (s *Signal) Trigger() {
	if s.triggered {
		return
	}
	s.triggered = true
	ws := s.waiters
	s.waiters = s.waiters[:0]
	for _, w := range ws {
		if w.a != nil {
			s.k.resumeBlockedAct(w.a)
			continue
		}
		p := w.p
		s.k.scheduleEvent(s.k.now, nil, p)
	}
}

// Reset rearms a fired signal so it can gate another round (repeated
// fork/join phases reuse one signal instead of allocating per round).
// Waiters registered after a Reset block until the next Trigger.
func (s *Signal) Reset() { s.triggered = false }

// WaitGroup counts down from an initial count; Wait blocks until the count
// reaches zero. It is the join primitive used for fork/join workloads such
// as the paper's Fig. 4 thread timeline.
type WaitGroup struct {
	sig   *Signal
	count int
}

// NewWaitGroup creates a WaitGroup with the given initial count (>= 0).
// A zero count is already done.
func NewWaitGroup(k *Kernel, name string, count int) *WaitGroup {
	if count < 0 {
		panic("sim: NewWaitGroup with negative count")
	}
	wg := &WaitGroup{sig: NewSignal(k, name), count: count}
	if count == 0 {
		wg.sig.Trigger()
	}
	return wg
}

// Done decrements the count, triggering completion at zero.
func (wg *WaitGroup) Done() {
	if wg.count <= 0 {
		panic("sim: WaitGroup.Done below zero")
	}
	wg.count--
	if wg.count == 0 {
		wg.sig.Trigger()
	}
}

// Wait blocks until the count reaches zero.
func (wg *WaitGroup) Wait(c *Context) { wg.sig.Wait(c) }

// WaitAct is the activity-mode join: true when the count is already zero,
// false when the activity was registered for the completion trigger.
func (wg *WaitGroup) WaitAct(a *ActCtx) bool { return wg.sig.WaitAct(a) }

// Count returns the remaining count.
func (wg *WaitGroup) Count() int { return wg.count }
