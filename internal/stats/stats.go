// Package stats provides the output-analysis statistics used by the
// simulation models: running moments (Welford), time-weighted averages for
// utilization and queue-length processes, histograms, quantile estimation,
// Student-t confidence intervals, and batch-means steady-state analysis.
//
// The paper's studies are statistical steady-state parametric models; every
// reported point is a sample statistic over a long run. This package is the
// measurement half of that methodology.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates observations and exposes running moments. The zero
// value is ready to use.
type Sample struct {
	n        int64
	mean     float64
	m2       float64 // sum of squared deviations (Welford)
	min, max float64
	sum      float64
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.sum += x
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// AddN records the same observation n times.
func (s *Sample) AddN(x float64, n int64) {
	for i := int64(0); i < n; i++ {
		s.Add(x)
	}
}

// Merge folds other into s (parallel Welford combination).
func (s *Sample) Merge(other *Sample) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	n1, n2 := float64(s.n), float64(other.n)
	delta := other.mean - s.mean
	tot := n1 + n2
	s.mean += delta * n2 / tot
	s.m2 += other.m2 + delta*delta*n1*n2/tot
	s.sum += other.sum
	s.n += other.n
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
}

// N returns the number of observations.
func (s *Sample) N() int64 { return s.n }

// Mean returns the sample mean (0 if empty).
func (s *Sample) Mean() float64 { return s.mean }

// Sum returns the sum of all observations.
func (s *Sample) Sum() float64 { return s.sum }

// Min returns the smallest observation (0 if empty).
func (s *Sample) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation (0 if empty).
func (s *Sample) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Variance returns the unbiased sample variance (0 for n < 2).
func (s *Sample) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s *Sample) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// CI returns the half-width of the two-sided Student-t confidence interval
// for the mean at the given confidence level (e.g. 0.95).
func (s *Sample) CI(level float64) float64 {
	if s.n < 2 {
		return math.Inf(1)
	}
	t := TQuantile(1-(1-level)/2, int(s.n-1))
	return t * s.StdErr()
}

// String summarizes the sample.
func (s *Sample) String() string {
	return fmt.Sprintf("n=%d mean=%.6g sd=%.6g min=%.6g max=%.6g",
		s.n, s.Mean(), s.StdDev(), s.Min(), s.Max())
}

// TimeWeighted accumulates a piecewise-constant process (queue length,
// busy/idle indicator) and reports its time-average. Typical use:
//
//	tw.Set(t, newValue) whenever the level changes;
//	tw.Mean(now) for the time average over [start, now].
type TimeWeighted struct {
	started  bool
	start    float64
	lastT    float64
	lastV    float64
	area     float64
	min, max float64
}

// Set records that the process takes value v from time t onward.
// Times must be non-decreasing.
func (tw *TimeWeighted) Set(t, v float64) {
	if !tw.started {
		tw.started = true
		tw.start, tw.lastT, tw.lastV = t, t, v
		tw.min, tw.max = v, v
		return
	}
	if t < tw.lastT {
		panic(fmt.Sprintf("stats: TimeWeighted.Set time went backwards (%g < %g)", t, tw.lastT))
	}
	tw.area += tw.lastV * (t - tw.lastT)
	tw.lastT, tw.lastV = t, v
	if v < tw.min {
		tw.min = v
	}
	if v > tw.max {
		tw.max = v
	}
}

// Add is a convenience for Set(t, current+delta).
func (tw *TimeWeighted) Add(t, delta float64) { tw.Set(t, tw.lastV+delta) }

// Value returns the current level of the process.
func (tw *TimeWeighted) Value() float64 { return tw.lastV }

// Mean returns the time-average of the process over [start, now].
func (tw *TimeWeighted) Mean(now float64) float64 {
	if !tw.started || now <= tw.start {
		return 0
	}
	area := tw.area + tw.lastV*(now-tw.lastT)
	return area / (now - tw.start)
}

// Area returns the integral of the process over [start, now].
func (tw *TimeWeighted) Area(now float64) float64 {
	if !tw.started {
		return 0
	}
	return tw.area + tw.lastV*(now-tw.lastT)
}

// Min returns the minimum level seen (0 if never set).
func (tw *TimeWeighted) Min() float64 { return tw.min }

// Max returns the maximum level seen (0 if never set).
func (tw *TimeWeighted) Max() float64 { return tw.max }

// Reset clears the accumulator so that measurement restarts at time t with
// the current value retained; used to discard warm-up transients.
func (tw *TimeWeighted) Reset(t float64) {
	v := tw.lastV
	tw.started = true
	tw.start, tw.lastT, tw.lastV = t, t, v
	tw.area = 0
	tw.min, tw.max = v, v
}

// Histogram is a fixed-width bucket histogram over [Lo, Hi) with overflow
// and underflow buckets.
type Histogram struct {
	Lo, Hi  float64
	buckets []int64
	under   int64
	over    int64
	n       int64
	sample  Sample
}

// NewHistogram creates a histogram with nbuckets equal-width buckets
// spanning [lo, hi). It panics unless lo < hi and nbuckets > 0.
func NewHistogram(lo, hi float64, nbuckets int) *Histogram {
	if lo >= hi || nbuckets <= 0 {
		panic("stats: NewHistogram with invalid parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, buckets: make([]int64, nbuckets)}
}

// Add records an observation.
func (h *Histogram) Add(x float64) {
	h.n++
	h.sample.Add(x)
	switch {
	case x < h.Lo:
		h.under++
	case x >= h.Hi:
		h.over++
	default:
		idx := int(float64(len(h.buckets)) * (x - h.Lo) / (h.Hi - h.Lo))
		if idx >= len(h.buckets) { // guard float rounding at the top edge
			idx = len(h.buckets) - 1
		}
		h.buckets[idx]++
	}
}

// N returns the total number of observations.
func (h *Histogram) N() int64 { return h.n }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i] }

// NumBuckets returns the number of in-range buckets.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// Underflow and Overflow return out-of-range counts.
func (h *Histogram) Underflow() int64 { return h.under }

// Overflow returns the count of observations >= Hi.
func (h *Histogram) Overflow() int64 { return h.over }

// Mean returns the exact (non-binned) mean of all observations.
func (h *Histogram) Mean() float64 { return h.sample.Mean() }

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) by linear
// interpolation within the histogram buckets. Underflow mass is treated as
// sitting at Lo and overflow mass at Hi.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.sample.Min()
	}
	if q >= 1 {
		return h.sample.Max()
	}
	target := q * float64(h.n)
	acc := float64(h.under)
	if acc >= target {
		return h.Lo
	}
	width := (h.Hi - h.Lo) / float64(len(h.buckets))
	for i, c := range h.buckets {
		if acc+float64(c) >= target {
			frac := (target - acc) / float64(c)
			return h.Lo + width*(float64(i)+frac)
		}
		acc += float64(c)
	}
	return h.Hi
}

// P2Quantile is the P² (Jain–Chlamtac) streaming quantile estimator: O(1)
// memory, no sorting, good steady-state accuracy for DES output.
type P2Quantile struct {
	p     float64
	init  []float64
	count int
	q     [5]float64 // marker heights
	n     [5]int     // marker positions
	np    [5]float64 // desired positions
	dn    [5]float64 // position increments
}

// NewP2Quantile creates an estimator for the p-quantile (0 < p < 1).
func NewP2Quantile(p float64) *P2Quantile {
	if p <= 0 || p >= 1 {
		panic("stats: NewP2Quantile with p out of (0,1)")
	}
	return &P2Quantile{p: p, init: make([]float64, 0, 5)}
}

// Add records an observation.
func (e *P2Quantile) Add(x float64) {
	e.count++
	if len(e.init) < 5 {
		e.init = append(e.init, x)
		if len(e.init) == 5 {
			sort.Float64s(e.init)
			for i := 0; i < 5; i++ {
				e.q[i] = e.init[i]
				e.n[i] = i + 1
			}
			p := e.p
			e.np = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
			e.dn = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
		}
		return
	}
	// Find cell k containing x and update extremes.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for i := 0; i < 4; i++ {
			if x < e.q[i+1] {
				k = i
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.n[i]++
	}
	for i := 0; i < 5; i++ {
		e.np[i] += e.dn[i]
	}
	// Adjust interior markers.
	for i := 1; i <= 3; i++ {
		d := e.np[i] - float64(e.n[i])
		if (d >= 1 && e.n[i+1]-e.n[i] > 1) || (d <= -1 && e.n[i-1]-e.n[i] < -1) {
			s := 1
			if d < 0 {
				s = -1
			}
			qn := e.parabolic(i, s)
			if e.q[i-1] < qn && qn < e.q[i+1] {
				e.q[i] = qn
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.n[i] += s
		}
	}
}

func (e *P2Quantile) parabolic(i, s int) float64 {
	fs := float64(s)
	ni := float64(e.n[i])
	nm := float64(e.n[i-1])
	np := float64(e.n[i+1])
	return e.q[i] + fs/(np-nm)*((ni-nm+fs)*(e.q[i+1]-e.q[i])/(np-ni)+
		(np-ni-fs)*(e.q[i]-e.q[i-1])/(ni-nm))
}

func (e *P2Quantile) linear(i, s int) float64 {
	return e.q[i] + float64(s)*(e.q[i+s]-e.q[i])/float64(e.n[i+s]-e.n[i])
}

// Value returns the current quantile estimate.
func (e *P2Quantile) Value() float64 {
	if e.count == 0 {
		return 0
	}
	if len(e.init) < 5 {
		tmp := append([]float64(nil), e.init...)
		sort.Float64s(tmp)
		idx := int(e.p * float64(len(tmp)))
		if idx >= len(tmp) {
			idx = len(tmp) - 1
		}
		return tmp[idx]
	}
	return e.q[2]
}

// N returns the number of observations seen.
func (e *P2Quantile) N() int { return e.count }

// BatchMeans implements the classical batch-means method for steady-state
// confidence intervals on autocorrelated DES output: observations are
// grouped into fixed-size batches and the batch averages are treated as
// (approximately) independent samples.
type BatchMeans struct {
	batchSize int
	cur       Sample
	batches   Sample
}

// NewBatchMeans creates a batch-means accumulator with the given batch size.
func NewBatchMeans(batchSize int) *BatchMeans {
	if batchSize <= 0 {
		panic("stats: NewBatchMeans with batchSize <= 0")
	}
	return &BatchMeans{batchSize: batchSize}
}

// Add records one raw observation.
func (b *BatchMeans) Add(x float64) {
	b.cur.Add(x)
	if int(b.cur.N()) == b.batchSize {
		b.batches.Add(b.cur.Mean())
		b.cur = Sample{}
	}
}

// NumBatches returns the number of completed batches.
func (b *BatchMeans) NumBatches() int { return int(b.batches.N()) }

// Mean returns the grand mean over completed batches.
func (b *BatchMeans) Mean() float64 { return b.batches.Mean() }

// CI returns the half-width of the confidence interval on the mean at the
// given level, computed over batch means.
func (b *BatchMeans) CI(level float64) float64 { return b.batches.CI(level) }

// --- Student-t quantiles ---

// TQuantile returns the p-quantile of the Student-t distribution with df
// degrees of freedom (p in (0,1)). Implemented via the inverse incomplete
// beta function relationship, accurate to ~1e-8 for df >= 1.
func TQuantile(p float64, df int) float64 {
	if df <= 0 {
		panic("stats: TQuantile with df <= 0")
	}
	if p <= 0 || p >= 1 {
		panic("stats: TQuantile with p out of (0,1)")
	}
	if p == 0.5 {
		return 0
	}
	neg := p < 0.5
	if neg {
		p = 1 - p
	}
	// x = P(T > t) tail; use inverse incomplete beta:
	// if t >= 0, 2*(1-p) = I_{df/(df+t^2)}(df/2, 1/2).
	z := 2 * (1 - p)
	v := float64(df)
	x := invIncBeta(z, v/2, 0.5)
	var t float64
	if x <= 0 {
		t = math.Inf(1)
	} else {
		t = math.Sqrt(v * (1 - x) / x)
	}
	if neg {
		t = -t
	}
	return t
}

// NormalQuantile returns the p-quantile of the standard normal distribution
// using the Acklam rational approximation (|error| < 1.15e-9).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: NormalQuantile with p out of (0,1)")
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// --- incomplete beta machinery for TQuantile ---

// lgamma wraps math.Lgamma discarding the sign (arguments here are > 0).
func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// incBeta returns the regularized incomplete beta function I_x(a, b) using
// the continued-fraction expansion (Numerical Recipes betacf form).
func incBeta(x, a, b float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	ln := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(ln)
	if x < (a+1)/(a+b+2) {
		return front * betacf(x, a, b) / a
	}
	return 1 - front*betacf(1-x, b, a)/b
}

func betacf(x, a, b float64) float64 {
	const maxIter = 300
	const eps = 3e-14
	const fpmin = 1e-300
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// invIncBeta returns x such that I_x(a, b) = y, by bisection refined with
// Newton steps (robust and plenty fast for the sizes used here).
func invIncBeta(y, a, b float64) float64 {
	if y <= 0 {
		return 0
	}
	if y >= 1 {
		return 1
	}
	lo, hi := 0.0, 1.0
	x := 0.5
	for i := 0; i < 200; i++ {
		v := incBeta(x, a, b)
		if math.Abs(v-y) < 1e-12 {
			break
		}
		if v < y {
			lo = x
		} else {
			hi = x
		}
		x = (lo + hi) / 2
	}
	return x
}

// Correlate returns the Pearson correlation coefficient of paired series x
// and y. It panics if the lengths differ or are < 2.
func Correlate(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		panic("stats: Correlate needs equal-length series of at least 2")
	}
	var sx, sy Sample
	for i := range x {
		sx.Add(x[i])
		sy.Add(y[i])
	}
	cov := 0.0
	for i := range x {
		cov += (x[i] - sx.Mean()) * (y[i] - sy.Mean())
	}
	cov /= float64(len(x) - 1)
	denom := sx.StdDev() * sy.StdDev()
	if denom == 0 {
		return 0
	}
	return cov / denom
}

// LinearFit returns the least-squares slope and intercept of y against x.
// It panics if the lengths differ or are < 2.
func LinearFit(x, y []float64) (slope, intercept float64) {
	if len(x) != len(y) || len(x) < 2 {
		panic("stats: LinearFit needs equal-length series of at least 2")
	}
	var sx, sy Sample
	for i := range x {
		sx.Add(x[i])
		sy.Add(y[i])
	}
	num, den := 0.0, 0.0
	for i := range x {
		dx := x[i] - sx.Mean()
		num += dx * (y[i] - sy.Mean())
		den += dx * dx
	}
	if den == 0 {
		return 0, sy.Mean()
	}
	slope = num / den
	intercept = sy.Mean() - slope*sx.Mean()
	return slope, intercept
}

// Autocorrelation returns the lag-k autocorrelation estimates of series x
// for k = 0..maxLag (biased estimator, the standard choice for DES output
// analysis). It panics if maxLag >= len(x) or len(x) < 2.
func Autocorrelation(x []float64, maxLag int) []float64 {
	if len(x) < 2 || maxLag >= len(x) || maxLag < 0 {
		panic("stats: Autocorrelation with invalid arguments")
	}
	var s Sample
	for _, v := range x {
		s.Add(v)
	}
	mean := s.Mean()
	denom := 0.0
	for _, v := range x {
		denom += (v - mean) * (v - mean)
	}
	out := make([]float64, maxLag+1)
	if denom == 0 {
		out[0] = 1
		return out
	}
	for k := 0; k <= maxLag; k++ {
		num := 0.0
		for i := 0; i+k < len(x); i++ {
			num += (x[i] - mean) * (x[i+k] - mean)
		}
		out[k] = num / denom
	}
	return out
}

// EffectiveSampleSize estimates the number of independent observations in
// an autocorrelated series using the initial-positive-sequence truncation:
// ESS = n / (1 + 2·Σρ_k) summed while ρ_k stays positive. Autocorrelated
// DES output (queue waits, busy indicators) has ESS far below n, which is
// why the models use batch means or replications for CIs.
func EffectiveSampleSize(x []float64) float64 {
	n := len(x)
	if n < 4 {
		return float64(n)
	}
	maxLag := n / 4
	rho := Autocorrelation(x, maxLag)
	sum := 0.0
	for k := 1; k <= maxLag; k++ {
		if rho[k] <= 0 {
			break
		}
		sum += rho[k]
	}
	ess := float64(n) / (1 + 2*sum)
	if ess > float64(n) {
		ess = float64(n)
	}
	if ess < 1 {
		ess = 1
	}
	return ess
}

// RelErr returns |a-b| / max(|a|,|b|, tiny): a symmetric relative error
// used throughout the experiment-accuracy checks.
func RelErr(a, b float64) float64 {
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m < 1e-300 {
		return 0
	}
	return d / m
}
