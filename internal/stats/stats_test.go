package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSampleBasics(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if !almost(s.Mean(), 5, 1e-12) {
		t.Errorf("mean = %g", s.Mean())
	}
	if !almost(s.Variance(), 32.0/7.0, 1e-12) {
		t.Errorf("variance = %g", s.Variance())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %g/%g", s.Min(), s.Max())
	}
	if !almost(s.Sum(), 40, 1e-12) {
		t.Errorf("sum = %g", s.Sum())
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Variance() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty sample should report zeros")
	}
}

func TestSampleMergeMatchesSequential(t *testing.T) {
	st := rng.New(5)
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n1, n2 := 1+st.Intn(50), 1+st.Intn(50)
		var a, b, all Sample
		for i := 0; i < n1; i++ {
			x := r.Normal(3, 2)
			a.Add(x)
			all.Add(x)
		}
		for i := 0; i < n2; i++ {
			x := r.Normal(-1, 5)
			b.Add(x)
			all.Add(x)
		}
		a.Merge(&b)
		return a.N() == all.N() &&
			almost(a.Mean(), all.Mean(), 1e-9) &&
			almost(a.Variance(), all.Variance(), 1e-6) &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestSampleAddN(t *testing.T) {
	var a, b Sample
	a.AddN(3, 4)
	for i := 0; i < 4; i++ {
		b.Add(3)
	}
	if a.N() != b.N() || a.Mean() != b.Mean() {
		t.Error("AddN mismatch with repeated Add")
	}
}

func TestCIShrinksWithN(t *testing.T) {
	r := rng.New(17)
	var small, large Sample
	for i := 0; i < 10; i++ {
		small.Add(r.Normal(0, 1))
	}
	for i := 0; i < 1000; i++ {
		large.Add(r.Normal(0, 1))
	}
	if small.CI(0.95) <= large.CI(0.95) {
		t.Errorf("CI did not shrink: small=%g large=%g", small.CI(0.95), large.CI(0.95))
	}
}

func TestCICoverage(t *testing.T) {
	// 95% CI should cover the true mean in roughly 95% of replications.
	r := rng.New(23)
	const reps = 400
	covered := 0
	for rep := 0; rep < reps; rep++ {
		var s Sample
		for i := 0; i < 30; i++ {
			s.Add(r.Normal(10, 4))
		}
		if math.Abs(s.Mean()-10) <= s.CI(0.95) {
			covered++
		}
	}
	frac := float64(covered) / reps
	if frac < 0.90 || frac > 0.99 {
		t.Errorf("95%% CI coverage = %g", frac)
	}
}

func TestTimeWeightedMean(t *testing.T) {
	var tw TimeWeighted
	tw.Set(0, 0)
	tw.Set(10, 2) // 0 over [0,10)
	tw.Set(30, 1) // 2 over [10,30)
	// 1 over [30,40): mean = (0*10 + 2*20 + 1*10)/40 = 50/40 = 1.25
	if m := tw.Mean(40); !almost(m, 1.25, 1e-12) {
		t.Errorf("mean = %g, want 1.25", m)
	}
	if tw.Min() != 0 || tw.Max() != 2 {
		t.Errorf("min/max = %g/%g", tw.Min(), tw.Max())
	}
	if v := tw.Value(); v != 1 {
		t.Errorf("value = %g", v)
	}
}

func TestTimeWeightedAdd(t *testing.T) {
	var tw TimeWeighted
	tw.Set(0, 1)
	tw.Add(5, 2)   // 3 from t=5
	tw.Add(10, -3) // 0 from t=10
	if tw.Value() != 0 {
		t.Errorf("value = %g", tw.Value())
	}
	if m := tw.Mean(10); !almost(m, (1*5+3*5)/10.0, 1e-12) {
		t.Errorf("mean = %g", m)
	}
}

func TestTimeWeightedReset(t *testing.T) {
	var tw TimeWeighted
	tw.Set(0, 5)
	tw.Set(10, 1)
	tw.Reset(10)
	if m := tw.Mean(20); !almost(m, 1, 1e-12) {
		t.Errorf("mean after reset = %g, want 1", m)
	}
}

func TestTimeWeightedBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var tw TimeWeighted
	tw.Set(10, 1)
	tw.Set(5, 2)
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(11)
	for i := 0; i < 10; i++ {
		if h.Bucket(i) != 1 {
			t.Errorf("bucket %d = %d, want 1", i, h.Bucket(i))
		}
	}
	if h.Underflow() != 1 || h.Overflow() != 1 {
		t.Errorf("under/over = %d/%d", h.Underflow(), h.Overflow())
	}
	if h.N() != 12 {
		t.Errorf("N = %d", h.N())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i % 100))
	}
	if q := h.Quantile(0.5); math.Abs(q-50) > 2 {
		t.Errorf("median = %g, want ~50", q)
	}
	if q := h.Quantile(0.9); math.Abs(q-90) > 2 {
		t.Errorf("p90 = %g, want ~90", q)
	}
}

func TestP2QuantileAgainstExact(t *testing.T) {
	r := rng.New(37)
	for _, p := range []float64{0.5, 0.9, 0.99} {
		est := NewP2Quantile(p)
		xs := make([]float64, 0, 50000)
		for i := 0; i < 50000; i++ {
			x := r.Exp(2)
			est.Add(x)
			xs = append(xs, x)
		}
		sort.Float64s(xs)
		exact := xs[int(p*float64(len(xs)))]
		if RelErr(est.Value(), exact) > 0.05 {
			t.Errorf("P2 %g-quantile = %g, exact = %g", p, est.Value(), exact)
		}
	}
}

func TestP2QuantileSmallN(t *testing.T) {
	est := NewP2Quantile(0.5)
	for _, x := range []float64{3, 1, 2} {
		est.Add(x)
	}
	if v := est.Value(); v < 1 || v > 3 {
		t.Errorf("small-n quantile = %g out of data range", v)
	}
}

func TestBatchMeans(t *testing.T) {
	r := rng.New(41)
	bm := NewBatchMeans(100)
	for i := 0; i < 10000; i++ {
		bm.Add(r.Normal(7, 2))
	}
	if bm.NumBatches() != 100 {
		t.Errorf("batches = %d", bm.NumBatches())
	}
	if math.Abs(bm.Mean()-7) > 0.1 {
		t.Errorf("batch mean = %g", bm.Mean())
	}
	if ci := bm.CI(0.95); ci <= 0 || ci > 0.2 {
		t.Errorf("batch CI = %g", ci)
	}
}

func TestTQuantileKnownValues(t *testing.T) {
	// Reference values from standard t tables.
	cases := []struct {
		p    float64
		df   int
		want float64
	}{
		{0.975, 1, 12.706},
		{0.975, 5, 2.571},
		{0.975, 10, 2.228},
		{0.975, 30, 2.042},
		{0.95, 10, 1.812},
		{0.99, 20, 2.528},
	}
	for _, c := range cases {
		got := TQuantile(c.p, c.df)
		if math.Abs(got-c.want)/c.want > 0.01 {
			t.Errorf("TQuantile(%g, %d) = %g, want %g", c.p, c.df, got, c.want)
		}
	}
	if TQuantile(0.5, 7) != 0 {
		t.Error("TQuantile(0.5) != 0")
	}
	if got := TQuantile(0.025, 10); math.Abs(got+2.228) > 0.03 {
		t.Errorf("TQuantile(0.025, 10) = %g, want -2.228", got)
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.995, 2.575829},
		{0.025, -1.959964},
		{0.841345, 1.0},
	}
	for _, c := range cases {
		got := NormalQuantile(c.p)
		if math.Abs(got-c.want) > 1e-4 {
			t.Errorf("NormalQuantile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestIncBetaSymmetry(t *testing.T) {
	err := quick.Check(func(xr, ar, br uint16) bool {
		x := float64(xr%1000)/1000.0 + 0.0005
		a := float64(ar%50)/10.0 + 0.1
		b := float64(br%50)/10.0 + 0.1
		lhs := incBeta(x, a, b)
		rhs := 1 - incBeta(1-x, b, a)
		return math.Abs(lhs-rhs) < 1e-8
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}

func TestCorrelate(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if c := Correlate(x, y); !almost(c, 1, 1e-12) {
		t.Errorf("perfect correlation = %g", c)
	}
	yneg := []float64{10, 8, 6, 4, 2}
	if c := Correlate(x, yneg); !almost(c, -1, 1e-12) {
		t.Errorf("perfect anticorrelation = %g", c)
	}
}

func TestLinearFit(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 2x + 1
	slope, intercept := LinearFit(x, y)
	if !almost(slope, 2, 1e-12) || !almost(intercept, 1, 1e-12) {
		t.Errorf("fit = (%g, %g), want (2, 1)", slope, intercept)
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(100, 110) < 0.09 || RelErr(100, 110) > 0.1 {
		t.Errorf("RelErr(100,110) = %g", RelErr(100, 110))
	}
	if RelErr(0, 0) != 0 {
		t.Errorf("RelErr(0,0) = %g", RelErr(0, 0))
	}
	if RelErr(5, 5) != 0 {
		t.Errorf("RelErr(5,5) = %g", RelErr(5, 5))
	}
}

func TestAutocorrelationWhiteNoise(t *testing.T) {
	r := rng.New(61)
	x := make([]float64, 5000)
	for i := range x {
		x[i] = r.Normal(0, 1)
	}
	rho := Autocorrelation(x, 10)
	if math.Abs(rho[0]-1) > 1e-12 {
		t.Errorf("rho[0] = %g, want 1", rho[0])
	}
	for k := 1; k <= 10; k++ {
		if math.Abs(rho[k]) > 0.05 {
			t.Errorf("white noise rho[%d] = %g", k, rho[k])
		}
	}
}

func TestAutocorrelationAR1(t *testing.T) {
	// AR(1) with phi=0.8: rho[k] ≈ 0.8^k.
	r := rng.New(67)
	const phi = 0.8
	x := make([]float64, 20000)
	prev := 0.0
	for i := range x {
		prev = phi*prev + r.Normal(0, 1)
		x[i] = prev
	}
	rho := Autocorrelation(x, 5)
	for k := 1; k <= 5; k++ {
		want := math.Pow(phi, float64(k))
		if math.Abs(rho[k]-want) > 0.05 {
			t.Errorf("AR(1) rho[%d] = %g, want ~%g", k, rho[k], want)
		}
	}
}

func TestEffectiveSampleSize(t *testing.T) {
	r := rng.New(71)
	// White noise: ESS ~ n.
	white := make([]float64, 4000)
	for i := range white {
		white[i] = r.Normal(0, 1)
	}
	if ess := EffectiveSampleSize(white); ess < 0.7*float64(len(white)) {
		t.Errorf("white-noise ESS = %g of %d", ess, len(white))
	}
	// Strongly correlated AR(1): ESS << n, roughly n(1-phi)/(1+phi).
	ar := make([]float64, 4000)
	prev := 0.0
	for i := range ar {
		prev = 0.9*prev + r.Normal(0, 1)
		ar[i] = prev
	}
	ess := EffectiveSampleSize(ar)
	want := float64(len(ar)) * (1 - 0.9) / (1 + 0.9)
	if ess > 2*want || ess < want/3 {
		t.Errorf("AR(1) ESS = %g, theory ~%g", ess, want)
	}
	// Tiny series degrade gracefully.
	if got := EffectiveSampleSize([]float64{1, 2}); got != 2 {
		t.Errorf("tiny ESS = %g", got)
	}
}

func TestAutocorrelationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Autocorrelation([]float64{1, 2, 3}, 5)
}

func TestWelfordNumericalStability(t *testing.T) {
	// Large offset: naive sum-of-squares would lose precision.
	var s Sample
	const offset = 1e9
	for _, x := range []float64{offset + 1, offset + 2, offset + 3} {
		s.Add(x)
	}
	if !almost(s.Variance(), 1, 1e-6) {
		t.Errorf("variance = %g, want 1", s.Variance())
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	r := rng.New(53)
	h := NewHistogram(0, 50, 64)
	for i := 0; i < 20000; i++ {
		h.Add(r.Exp(5))
	}
	prev := math.Inf(-1)
	for q := 0.05; q < 1; q += 0.05 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%g: %g < %g", q, v, prev)
		}
		prev = v
	}
}

func BenchmarkSampleAdd(b *testing.B) {
	var s Sample
	for i := 0; i < b.N; i++ {
		s.Add(float64(i))
	}
}

func BenchmarkP2Add(b *testing.B) {
	e := NewP2Quantile(0.95)
	for i := 0; i < b.N; i++ {
		e.Add(float64(i % 1000))
	}
}
