package sweep

// Race-coverage and edge-case tests for the worker pool: exercised under
// `go test -race` in CI with worker counts below, at, and far above the
// point count, plus the Point accessor contract experiments rely on.

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

func TestRunWorkerCounts(t *testing.T) {
	// Workers=0 (GOMAXPROCS), 1 (serial), and far more workers than
	// points must all evaluate every point exactly once and keep outcomes
	// in point order.
	for _, workers := range []int{0, 1, 3, 64} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			g, err := NewGrid(42,
				Axis{Name: "a", Values: Linspace(0, 4, 5)},
				Axis{Name: "b", Values: []float64{1, 2, 3}},
			)
			if err != nil {
				t.Fatal(err)
			}
			var calls int64
			outs := g.Run(workers, func(p Point) (map[string]float64, error) {
				atomic.AddInt64(&calls, 1)
				return map[string]float64{"idx": float64(p.Index)}, nil
			})
			if calls != int64(g.Size()) {
				t.Errorf("fn called %d times for %d points", calls, g.Size())
			}
			for i, o := range outs {
				if o.Point.Index != i || o.Metrics["idx"] != float64(i) {
					t.Fatalf("outcome %d out of order: %+v", i, o)
				}
			}
		})
	}
}

func TestRunPointOrderStableAcrossWorkerCounts(t *testing.T) {
	// The full outcome slice — points, seeds, and metrics — must be
	// independent of scheduling.
	run := func(workers int) []Outcome {
		g, _ := NewGrid(7,
			Axis{Name: "x", Values: Linspace(0, 9, 10)},
			Axis{Name: "y", Values: []float64{0.5, 1.5}},
		)
		return g.Run(workers, func(p Point) (map[string]float64, error) {
			return map[string]float64{"v": p.Get("x")*10 + p.Get("y") + float64(p.Seed%97)}, nil
		})
	}
	base := run(1)
	for _, workers := range []int{0, 2, 32} {
		if got := run(workers); !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d changed outcomes", workers)
		}
	}
}

func TestRunErrorPropagationConcurrent(t *testing.T) {
	// Multiple failing points across many workers: every error lands on
	// its own outcome and FirstError reports the lowest-index failure.
	g, _ := NewGrid(1, Axis{Name: "v", Values: Linspace(0, 19, 20)})
	failAt := map[int]bool{3: true, 7: true, 15: true}
	outs := g.Run(16, func(p Point) (map[string]float64, error) {
		if failAt[p.Index] {
			return nil, fmt.Errorf("point %d failed", p.Index)
		}
		return map[string]float64{"ok": 1}, nil
	})
	for i, o := range outs {
		if failAt[i] != (o.Err != nil) {
			t.Errorf("point %d: err = %v, want failure=%v", i, o.Err, failAt[i])
		}
	}
	err := FirstError(outs)
	if err == nil || !strings.Contains(err.Error(), "point 3") {
		t.Errorf("FirstError = %v, want the lowest-index failure", err)
	}
}

func TestRunAllPointsFailing(t *testing.T) {
	g, _ := NewGrid(1, Axis{Name: "v", Values: []float64{1, 2}})
	boom := errors.New("boom")
	outs := g.Run(4, func(Point) (map[string]float64, error) { return nil, boom })
	if err := FirstError(outs); err == nil || !errors.Is(err, boom) {
		t.Errorf("FirstError = %v", err)
	}
}

func TestRunSinglePointManyWorkers(t *testing.T) {
	g, _ := NewGrid(1, Axis{Name: "v", Values: []float64{5}})
	outs := g.Run(32, func(p Point) (map[string]float64, error) {
		return map[string]float64{"v": p.Get("v")}, nil
	})
	if len(outs) != 1 || outs[0].Metrics["v"] != 5 {
		t.Fatalf("outs = %+v", outs)
	}
}

func TestPointGetContract(t *testing.T) {
	g, _ := NewGrid(1,
		Axis{Name: "frac", Values: []float64{0.75}},
		Axis{Name: "n", Values: []float64{16}},
	)
	p := g.Points()[0]
	cases := []struct {
		name      string
		fn        func() float64
		want      float64
		wantPanic string // substring of the panic message, "" = no panic
	}{
		{"known axis", func() float64 { return p.Get("frac") }, 0.75, ""},
		{"second axis", func() float64 { return p.Get("n") }, 16, ""},
		{"GetInt truncates", func() float64 { return float64(p.GetInt("frac")) }, 0, ""},
		{"GetInt exact", func() float64 { return float64(p.GetInt("n")) }, 16, ""},
		{"unknown axis", func() float64 { return p.Get("nope") }, 0, `no axis "nope"`},
		{"empty name", func() float64 { return p.Get("") }, 0, `no axis ""`},
		{"GetInt unknown", func() float64 { return float64(p.GetInt("missing")) }, 0, `no axis "missing"`},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				r := recover()
				if tc.wantPanic == "" {
					if r != nil {
						t.Fatalf("unexpected panic: %v", r)
					}
					return
				}
				msg, ok := r.(string)
				if !ok {
					t.Fatalf("panic value %v (%T), want string", r, r)
				}
				if !strings.Contains(msg, tc.wantPanic) {
					t.Fatalf("panic %q does not mention %q", msg, tc.wantPanic)
				}
			}()
			if got := tc.fn(); tc.wantPanic == "" && got != tc.want {
				t.Fatalf("got %g, want %g", got, tc.want)
			}
		})
	}
}
