package sweep

import (
	"sync/atomic"
	"time"
)

// RetryStats counts what a WithRetries wrapper did. Grid.Run invokes the
// point function from several goroutines, hence atomics.
type RetryStats struct {
	// Attempts is every execution, first tries included.
	Attempts atomic.Int64
	// Retries is re-executions after a failed attempt.
	Retries atomic.Int64
	// Recovered is points that failed at least once and then succeeded.
	Recovered atomic.Int64
}

// WithRetries wraps a point function with bounded retries for transiently
// failing points (an injected fault crashing the VM, a watchdogged
// replicate). Attempt 0 runs the point verbatim — a zero-retry wrapper is
// byte-identical to the bare function — and attempt k > 0 re-derives the
// point's seed from (Point.Seed, k), so a stochastic failure is not
// replayed identically while the whole schedule stays deterministic.
// Backoff doubles from base per failed attempt (capped at 32x base);
// sleep is injectable for tests (nil = time.Sleep). stats may be nil.
func WithRetries(fn RunFunc, retries int, base time.Duration, sleep func(time.Duration), stats *RetryStats) RunFunc {
	if retries <= 0 {
		return fn
	}
	if sleep == nil {
		sleep = time.Sleep
	}
	return func(p Point) (map[string]float64, error) {
		for attempt := 0; ; attempt++ {
			q := p
			if attempt > 0 {
				q.Seed = pointSeed(p.Seed, attempt)
			}
			if stats != nil {
				stats.Attempts.Add(1)
			}
			m, err := fn(q)
			if err == nil {
				if attempt > 0 && stats != nil {
					stats.Recovered.Add(1)
				}
				return m, nil
			}
			if attempt >= retries {
				return m, err
			}
			if stats != nil {
				stats.Retries.Add(1)
			}
			shift := attempt
			if shift > 5 {
				shift = 5
			}
			if d := base << uint(shift); d > 0 {
				sleep(d)
			}
		}
	}
}
