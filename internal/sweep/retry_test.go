package sweep

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestWithRetriesRecoversAndDerivesSeeds(t *testing.T) {
	// The point fails twice, then succeeds on the third attempt.
	remaining := 2
	var sleeps []time.Duration
	var attempts []uint64
	wrapped := WithRetries(func(p Point) (map[string]float64, error) {
		attempts = append(attempts, p.Seed)
		if remaining > 0 {
			remaining--
			return nil, errors.New("transient")
		}
		return map[string]float64{"v": 1}, nil
	}, 3, 10*time.Millisecond, func(d time.Duration) {
		sleeps = append(sleeps, d)
	}, &RetryStats{})

	m, err := wrapped(Point{Seed: 42})
	if err != nil || m["v"] != 1 {
		t.Fatalf("wrapped run: %v %v", m, err)
	}
	if len(attempts) != 3 {
		t.Fatalf("attempt seeds %v, want 3 attempts", attempts)
	}
	if attempts[0] != 42 {
		t.Errorf("attempt 0 seed = %d, want the point seed verbatim", attempts[0])
	}
	if attempts[1] == 42 || attempts[2] == 42 || attempts[1] == attempts[2] {
		t.Errorf("retry seeds %v must be distinct and differ from the original", attempts)
	}
	// Deterministic: the same point retried again produces the same seeds.
	if s1, s2 := pointSeed(42, 1), pointSeed(42, 2); attempts[1] != s1 || attempts[2] != s2 {
		t.Errorf("retry seeds %v, want derived %d, %d", attempts[1:], s1, s2)
	}
	// Exponential backoff: 10ms then 20ms.
	if len(sleeps) != 2 || sleeps[0] != 10*time.Millisecond || sleeps[1] != 20*time.Millisecond {
		t.Errorf("backoffs = %v", sleeps)
	}
}

func TestWithRetriesExhaustion(t *testing.T) {
	calls := 0
	stats := &RetryStats{}
	wrapped := WithRetries(func(p Point) (map[string]float64, error) {
		calls++
		return nil, fmt.Errorf("always broken")
	}, 2, 0, func(time.Duration) {}, stats)
	if _, err := wrapped(Point{Seed: 7}); err == nil {
		t.Fatal("exhausted retries returned nil error")
	}
	if calls != 3 { // 1 try + 2 retries
		t.Errorf("calls = %d, want 3", calls)
	}
	if stats.Attempts.Load() != 3 || stats.Retries.Load() != 2 || stats.Recovered.Load() != 0 {
		t.Errorf("stats = %d/%d/%d", stats.Attempts.Load(), stats.Retries.Load(), stats.Recovered.Load())
	}
}

func TestWithRetriesZeroIsIdentity(t *testing.T) {
	fn := func(p Point) (map[string]float64, error) { return nil, nil }
	if got := WithRetries(fn, 0, time.Second, nil, nil); fmt.Sprintf("%p", got) != fmt.Sprintf("%p", fn) {
		t.Error("zero retries must return the function unchanged")
	}
}

func TestWithRetriesBackoffCap(t *testing.T) {
	var sleeps []time.Duration
	wrapped := WithRetries(func(p Point) (map[string]float64, error) {
		return nil, errors.New("nope")
	}, 10, time.Millisecond, func(d time.Duration) { sleeps = append(sleeps, d) }, nil)
	wrapped(Point{})
	last := sleeps[len(sleeps)-1]
	if last != 32*time.Millisecond {
		t.Errorf("final backoff = %v, want the 32x cap", last)
	}
}
