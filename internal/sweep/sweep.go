// Package sweep is the parameter-sweep harness behind every experiment:
// it expands parameter grids into points, assigns each point a
// deterministic seed, and executes the points on a worker pool (real
// host parallelism — each simulation is single-threaded and independent).
package sweep

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// Axis is one swept parameter: a name and its values.
type Axis struct {
	Name   string
	Values []float64
}

// Point is one grid point: parameter values by axis name, plus a
// deterministic seed derived from the point's coordinates.
type Point struct {
	Index  int
	Values map[string]float64
	Seed   uint64
}

// Get returns the value of the named axis; it panics on unknown names so
// misspelled axis lookups fail loudly in experiments.
func (p Point) Get(name string) float64 {
	v, ok := p.Values[name]
	if !ok {
		panic(fmt.Sprintf("sweep: point has no axis %q", name))
	}
	return v
}

// GetInt returns the named value as an int.
func (p Point) GetInt(name string) int { return int(p.Get(name)) }

// Grid is a full-factorial sweep over axes.
type Grid struct {
	axes     []Axis
	BaseSeed uint64
}

// NewGrid creates a grid; axis order fixes point enumeration order (last
// axis fastest).
func NewGrid(baseSeed uint64, axes ...Axis) (*Grid, error) {
	if len(axes) == 0 {
		return nil, fmt.Errorf("sweep: grid with no axes")
	}
	seen := map[string]bool{}
	for _, a := range axes {
		if a.Name == "" {
			return nil, fmt.Errorf("sweep: axis with empty name")
		}
		if len(a.Values) == 0 {
			return nil, fmt.Errorf("sweep: axis %q with no values", a.Name)
		}
		if seen[a.Name] {
			return nil, fmt.Errorf("sweep: duplicate axis %q", a.Name)
		}
		seen[a.Name] = true
	}
	return &Grid{axes: axes, BaseSeed: baseSeed}, nil
}

// Size returns the number of grid points.
func (g *Grid) Size() int {
	n := 1
	for _, a := range g.axes {
		n *= len(a.Values)
	}
	return n
}

// Axes returns the axis definitions.
func (g *Grid) Axes() []Axis { return g.axes }

// Points enumerates all grid points in deterministic order.
func (g *Grid) Points() []Point {
	n := g.Size()
	pts := make([]Point, 0, n)
	idx := make([]int, len(g.axes))
	for i := 0; i < n; i++ {
		vals := make(map[string]float64, len(g.axes))
		for ai, a := range g.axes {
			vals[a.Name] = a.Values[idx[ai]]
		}
		pts = append(pts, Point{
			Index:  i,
			Values: vals,
			Seed:   pointSeed(g.BaseSeed, i),
		})
		// Increment mixed-radix counter, last axis fastest.
		for ai := len(g.axes) - 1; ai >= 0; ai-- {
			idx[ai]++
			if idx[ai] < len(g.axes[ai].Values) {
				break
			}
			idx[ai] = 0
		}
	}
	return pts
}

// pointSeed mixes the base seed with the point index (SplitMix64 finalizer)
// so neighbouring points get statistically unrelated seeds.
func pointSeed(base uint64, index int) uint64 {
	z := base + 0x9e3779b97f4a7c15*uint64(index+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Outcome pairs a point with the experiment's measured values.
type Outcome struct {
	Point   Point
	Metrics map[string]float64
	Err     error
}

// RunFunc evaluates one point, returning named metrics.
type RunFunc func(Point) (map[string]float64, error)

// Run evaluates every grid point with up to workers goroutines (0 means
// GOMAXPROCS) and returns outcomes sorted by point index. Each point's
// randomness comes only from its own Seed, so results are independent of
// scheduling.
func (g *Grid) Run(workers int, fn RunFunc) []Outcome {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pts := g.Points()
	out := make([]Outcome, len(pts))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				metrics, err := fn(pts[i])
				out[i] = Outcome{Point: pts[i], Metrics: metrics, Err: err}
			}
		}()
	}
	for i := range pts {
		work <- i
	}
	close(work)
	wg.Wait()
	return out
}

// FirstError returns the first error among outcomes, if any.
func FirstError(outs []Outcome) error {
	for _, o := range outs {
		if o.Err != nil {
			return fmt.Errorf("sweep: point %d: %w", o.Point.Index, o.Err)
		}
	}
	return nil
}

// SeriesBy groups outcomes into series keyed by the value of axis
// `seriesAxis`, with x taken from axis `xAxis` and y from the named
// metric. Series and points within each series are sorted ascending.
func SeriesBy(outs []Outcome, seriesAxis, xAxis, metric string) (keys []float64, xs [][]float64, ys [][]float64) {
	group := map[float64][]Outcome{}
	for _, o := range outs {
		k := o.Point.Get(seriesAxis)
		group[k] = append(group[k], o)
	}
	for k := range group {
		keys = append(keys, k)
	}
	sort.Float64s(keys)
	for _, k := range keys {
		os := group[k]
		sort.Slice(os, func(i, j int) bool {
			return os[i].Point.Get(xAxis) < os[j].Point.Get(xAxis)
		})
		var x, y []float64
		for _, o := range os {
			x = append(x, o.Point.Get(xAxis))
			y = append(y, o.Metrics[metric])
		}
		xs = append(xs, x)
		ys = append(ys, y)
	}
	return keys, xs, ys
}

// Ints converts an int slice to the float64 axis values sweep expects.
func Ints(vs ...int) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = float64(v)
	}
	return out
}

// Floats is a convenience literal helper.
func Floats(vs ...float64) []float64 { return vs }

// Linspace returns n evenly spaced values over [lo, hi] inclusive.
func Linspace(lo, hi float64, n int) []float64 {
	if n <= 0 {
		panic("sweep: Linspace with n <= 0")
	}
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

// PowersOfTwo returns {2^lo, ..., 2^hi}.
func PowersOfTwo(lo, hi int) []float64 {
	if lo > hi || lo < 0 {
		panic(fmt.Sprintf("sweep: PowersOfTwo(%d, %d)", lo, hi))
	}
	out := make([]float64, 0, hi-lo+1)
	for e := lo; e <= hi; e++ {
		out = append(out, float64(int(1)<<e))
	}
	return out
}
