package sweep

import (
	"errors"
	"math"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestGridEnumeration(t *testing.T) {
	g, err := NewGrid(1,
		Axis{Name: "a", Values: []float64{1, 2}},
		Axis{Name: "b", Values: []float64{10, 20, 30}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 6 {
		t.Fatalf("size = %d, want 6", g.Size())
	}
	pts := g.Points()
	if len(pts) != 6 {
		t.Fatalf("points = %d", len(pts))
	}
	// Last axis fastest.
	wantA := []float64{1, 1, 1, 2, 2, 2}
	wantB := []float64{10, 20, 30, 10, 20, 30}
	for i, p := range pts {
		if p.Get("a") != wantA[i] || p.Get("b") != wantB[i] {
			t.Errorf("point %d = (%g, %g), want (%g, %g)",
				i, p.Get("a"), p.Get("b"), wantA[i], wantB[i])
		}
		if p.Index != i {
			t.Errorf("point %d has index %d", i, p.Index)
		}
	}
}

func TestGridValidation(t *testing.T) {
	if _, err := NewGrid(1); err == nil {
		t.Error("empty grid accepted")
	}
	if _, err := NewGrid(1, Axis{Name: "", Values: []float64{1}}); err == nil {
		t.Error("empty axis name accepted")
	}
	if _, err := NewGrid(1, Axis{Name: "a"}); err == nil {
		t.Error("empty axis values accepted")
	}
	if _, err := NewGrid(1, Axis{Name: "a", Values: []float64{1}}, Axis{Name: "a", Values: []float64{2}}); err == nil {
		t.Error("duplicate axis accepted")
	}
}

func TestPointSeedsDistinct(t *testing.T) {
	g, _ := NewGrid(99, Axis{Name: "a", Values: Linspace(0, 1, 50)})
	seen := map[uint64]bool{}
	for _, p := range g.Points() {
		if seen[p.Seed] {
			t.Fatalf("duplicate seed %d", p.Seed)
		}
		seen[p.Seed] = true
	}
}

func TestSeedsStableAcrossRuns(t *testing.T) {
	g1, _ := NewGrid(5, Axis{Name: "a", Values: []float64{1, 2, 3}})
	g2, _ := NewGrid(5, Axis{Name: "a", Values: []float64{1, 2, 3}})
	p1, p2 := g1.Points(), g2.Points()
	for i := range p1 {
		if p1[i].Seed != p2[i].Seed {
			t.Fatal("seeds not reproducible")
		}
	}
}

func TestGetUnknownAxisPanics(t *testing.T) {
	g, _ := NewGrid(1, Axis{Name: "a", Values: []float64{1}})
	p := g.Points()[0]
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Get("nope")
}

func TestRunParallelAndOrdered(t *testing.T) {
	g, _ := NewGrid(1, Axis{Name: "v", Values: Linspace(0, 99, 100)})
	var calls int64
	outs := g.Run(8, func(p Point) (map[string]float64, error) {
		atomic.AddInt64(&calls, 1)
		return map[string]float64{"double": 2 * p.Get("v")}, nil
	})
	if calls != 100 {
		t.Errorf("calls = %d", calls)
	}
	for i, o := range outs {
		if o.Point.Index != i {
			t.Fatalf("outcome %d has point index %d", i, o.Point.Index)
		}
		if o.Metrics["double"] != 2*float64(i) {
			t.Fatalf("outcome %d metric = %g", i, o.Metrics["double"])
		}
	}
	if err := FirstError(outs); err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	g, _ := NewGrid(1, Axis{Name: "v", Values: []float64{1, 2, 3}})
	boom := errors.New("boom")
	outs := g.Run(2, func(p Point) (map[string]float64, error) {
		if p.Get("v") == 2 {
			return nil, boom
		}
		return map[string]float64{}, nil
	})
	err := FirstError(outs)
	if err == nil || !errors.Is(err, boom) {
		t.Errorf("FirstError = %v", err)
	}
}

func TestSeriesBy(t *testing.T) {
	g, _ := NewGrid(1,
		Axis{Name: "s", Values: []float64{1, 2}},
		Axis{Name: "x", Values: []float64{10, 20}},
	)
	outs := g.Run(1, func(p Point) (map[string]float64, error) {
		return map[string]float64{"y": p.Get("s")*100 + p.Get("x")}, nil
	})
	keys, xs, ys := SeriesBy(outs, "s", "x", "y")
	if !reflect.DeepEqual(keys, []float64{1, 2}) {
		t.Fatalf("keys = %v", keys)
	}
	if !reflect.DeepEqual(xs[0], []float64{10, 20}) {
		t.Fatalf("xs[0] = %v", xs[0])
	}
	if !reflect.DeepEqual(ys[1], []float64{210, 220}) {
		t.Fatalf("ys[1] = %v", ys[1])
	}
}

func TestLinspace(t *testing.T) {
	got := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("Linspace = %v", got)
		}
	}
	if got := Linspace(3, 9, 1); got[0] != 3 {
		t.Errorf("Linspace n=1 = %v", got)
	}
}

func TestPowersOfTwo(t *testing.T) {
	got := PowersOfTwo(0, 4)
	want := []float64{1, 2, 4, 8, 16}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PowersOfTwo = %v", got)
	}
}

func TestInts(t *testing.T) {
	if !reflect.DeepEqual(Ints(1, 2, 3), []float64{1, 2, 3}) {
		t.Error("Ints conversion wrong")
	}
}

func TestRunDeterministicUnderWorkerCounts(t *testing.T) {
	// Results (which depend only on point seeds) must not change with the
	// level of host parallelism.
	mk := func(workers int) []float64 {
		g, _ := NewGrid(7, Axis{Name: "x", Values: Linspace(0, 9, 10)})
		outs := g.Run(workers, func(p Point) (map[string]float64, error) {
			return map[string]float64{"seedval": float64(p.Seed % 1000)}, nil
		})
		var vals []float64
		for _, o := range outs {
			vals = append(vals, o.Metrics["seedval"])
		}
		return vals
	}
	if !reflect.DeepEqual(mk(1), mk(8)) {
		t.Error("worker count changed results")
	}
}
