// Package testutil holds small helpers shared by command tests.
package testutil

import (
	"io"
	"os"
	"testing"
)

// CaptureStdout runs fn with os.Stdout redirected to a pipe and returns
// everything fn wrote alongside fn's error. os.Stdout is restored before
// returning.
func CaptureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	runErr := fn()
	w.Close()
	return <-done, runErr
}
