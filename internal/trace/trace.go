// Package trace records per-processor state timelines from simulation runs
// and renders them as ASCII Gantt charts — the counterpart of the paper's
// Fig. 4 "Threads Timeline" and of Workbench's model animation.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Event is one state transition of one track.
type Event struct {
	T     sim.Time
	Track string
	State string
}

// Recorder collects events; it implements sim.Tracer so it can be attached
// directly to a kernel, and models may also record custom tracks manually.
type Recorder struct {
	events []Event
	// Filter, when non-nil, drops events whose track name it rejects.
	Filter func(track string) bool
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// ProcState implements sim.Tracer.
func (r *Recorder) ProcState(t sim.Time, name, state string) {
	r.Record(t, name, state)
}

// Record adds one event.
func (r *Recorder) Record(t sim.Time, track, state string) {
	if r.Filter != nil && !r.Filter(track) {
		return
	}
	r.events = append(r.events, Event{T: t, Track: track, State: state})
}

// Events returns all recorded events in record order.
func (r *Recorder) Events() []Event { return r.events }

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// Tracks returns the distinct track names, sorted.
func (r *Recorder) Tracks() []string {
	seen := map[string]bool{}
	for _, e := range r.events {
		seen[e.Track] = true
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// StateDurations integrates the time each (track, state) pair was active
// between the first event and `until`. States are piecewise constant per
// track.
func (r *Recorder) StateDurations(until sim.Time) map[string]map[string]float64 {
	type cur struct {
		state string
		since sim.Time
	}
	actives := map[string]*cur{}
	out := map[string]map[string]float64{}
	add := func(track, state string, d float64) {
		if d <= 0 {
			return
		}
		if out[track] == nil {
			out[track] = map[string]float64{}
		}
		out[track][state] += d
	}
	// Events must be processed in time order; record order matches
	// simulation order already, but sort defensively (stable keeps ties).
	evs := append([]Event(nil), r.events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].T < evs[j].T })
	for _, e := range evs {
		if a, ok := actives[e.Track]; ok {
			add(e.Track, a.state, e.T-a.since)
		}
		actives[e.Track] = &cur{state: e.State, since: e.T}
	}
	for track, a := range actives {
		add(track, a.state, until-a.since)
	}
	return out
}

// stateGlyphs maps common states to glyphs; unknown states get '?'.
var stateGlyphs = map[string]byte{
	"start": '.',
	"run":   '#',
	"busy":  '#',
	"wait":  '-',
	"idle":  ' ',
	"mem":   'M',
	"net":   '~',
	"done":  '.',
}

// Gantt renders tracks over [t0, t1] into width columns, one row per
// track, using per-state glyphs (# busy, - wait, M mem, ~ net).
func (r *Recorder) Gantt(w io.Writer, t0, t1 sim.Time, width int) error {
	if t1 <= t0 || width <= 0 {
		return fmt.Errorf("trace: bad Gantt window [%g, %g] x %d", t0, t1, width)
	}
	tracks := r.Tracks()
	if len(tracks) == 0 {
		return fmt.Errorf("trace: no events recorded")
	}
	evs := append([]Event(nil), r.events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].T < evs[j].T })
	byTrack := map[string][]Event{}
	for _, e := range evs {
		byTrack[e.Track] = append(byTrack[e.Track], e)
	}
	nameW := 0
	for _, tr := range tracks {
		if len(tr) > nameW {
			nameW = len(tr)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%*s |%s|\n", nameW, "t", axisLabel(t0, t1, width))
	for _, tr := range tracks {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		tevs := byTrack[tr]
		for i, e := range tevs {
			end := t1
			if i+1 < len(tevs) {
				end = tevs[i+1].T
			}
			if end <= t0 || e.T >= t1 {
				continue
			}
			glyph, ok := stateGlyphs[e.State]
			if !ok {
				glyph = '?'
			}
			c0 := clamp(int(float64(width)*(e.T-t0)/(t1-t0)), 0, width-1)
			c1 := clamp(int(float64(width)*(end-t0)/(t1-t0)), c0, width-1)
			for c := c0; c <= c1; c++ {
				row[c] = glyph
			}
		}
		fmt.Fprintf(&b, "%*s |%s|\n", nameW, tr, row)
	}
	b.WriteString("legend: # run/busy  - wait  M mem  ~ net  . start/done\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func axisLabel(t0, t1 sim.Time, width int) string {
	lo := fmt.Sprintf("%g", t0)
	hi := fmt.Sprintf("%g", t1)
	gap := width - len(lo) - len(hi)
	if gap < 1 {
		gap = 1
	}
	s := lo + strings.Repeat(".", gap) + hi
	if len(s) > width {
		s = s[:width]
	}
	return s
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
