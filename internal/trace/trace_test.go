package trace

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestRecorderCollectsKernelEvents(t *testing.T) {
	k := sim.NewKernel()
	rec := NewRecorder()
	k.Tracer = rec
	k.Spawn("worker", func(c *sim.Context) {
		c.Wait(5)
		c.Wait(5)
	})
	if _, err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("no events recorded")
	}
	tracks := rec.Tracks()
	if len(tracks) != 1 || tracks[0] != "worker" {
		t.Errorf("tracks = %v", tracks)
	}
}

func TestStateDurations(t *testing.T) {
	rec := NewRecorder()
	rec.Record(0, "p", "run")
	rec.Record(10, "p", "wait")
	rec.Record(30, "p", "run")
	d := rec.StateDurations(40)
	if math.Abs(d["p"]["run"]-20) > 1e-12 {
		t.Errorf("run = %g, want 20", d["p"]["run"])
	}
	if math.Abs(d["p"]["wait"]-20) > 1e-12 {
		t.Errorf("wait = %g, want 20", d["p"]["wait"])
	}
}

func TestStateDurationsMultiTrack(t *testing.T) {
	rec := NewRecorder()
	rec.Record(0, "a", "busy")
	rec.Record(0, "b", "idle")
	rec.Record(50, "b", "busy")
	d := rec.StateDurations(100)
	if d["a"]["busy"] != 100 {
		t.Errorf("a busy = %g", d["a"]["busy"])
	}
	if d["b"]["idle"] != 50 || d["b"]["busy"] != 50 {
		t.Errorf("b = %v", d["b"])
	}
}

func TestFilter(t *testing.T) {
	rec := NewRecorder()
	rec.Filter = func(track string) bool { return strings.HasPrefix(track, "keep") }
	rec.Record(0, "keep-1", "run")
	rec.Record(0, "drop-1", "run")
	if rec.Len() != 1 {
		t.Errorf("events = %d, want 1", rec.Len())
	}
}

func TestGanttRender(t *testing.T) {
	rec := NewRecorder()
	rec.Record(0, "hwp", "run")
	rec.Record(50, "hwp", "wait")
	rec.Record(0, "lwp0", "idle")
	rec.Record(50, "lwp0", "run")
	var sb strings.Builder
	if err := rec.Gantt(&sb, 0, 100, 40); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "hwp") || !strings.Contains(out, "lwp0") {
		t.Errorf("missing tracks:\n%s", out)
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, "-") {
		t.Errorf("missing glyphs:\n%s", out)
	}
	if !strings.Contains(out, "legend") {
		t.Error("missing legend")
	}
	// The hwp row should be roughly half # and half -.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "hwp") {
			hashes := strings.Count(line, "#")
			dashes := strings.Count(line, "-")
			if hashes < 15 || dashes < 15 {
				t.Errorf("hwp row unbalanced (%d #, %d -): %q", hashes, dashes, line)
			}
		}
	}
}

func TestGanttBadWindow(t *testing.T) {
	rec := NewRecorder()
	rec.Record(0, "p", "run")
	var sb strings.Builder
	if err := rec.Gantt(&sb, 10, 10, 40); err == nil {
		t.Error("degenerate window accepted")
	}
	if err := rec.Gantt(&sb, 0, 10, 0); err == nil {
		t.Error("zero width accepted")
	}
}

func TestGanttEmpty(t *testing.T) {
	rec := NewRecorder()
	var sb strings.Builder
	if err := rec.Gantt(&sb, 0, 10, 40); err == nil {
		t.Error("empty recorder rendered")
	}
}

func TestUnknownStateGlyph(t *testing.T) {
	rec := NewRecorder()
	rec.Record(0, "p", "weird-state")
	var sb strings.Builder
	if err := rec.Gantt(&sb, 0, 10, 20); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "?") {
		t.Error("unknown state not rendered as ?")
	}
}

// errWriter fails every write with a fixed error.
type errWriter struct{}

func (errWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestGanttWriterErrorPropagates(t *testing.T) {
	rec := NewRecorder()
	rec.Record(0, "p", "run")
	if err := rec.Gantt(errWriter{}, 0, 10, 20); err == nil {
		t.Fatal("writer error swallowed")
	}
}

func TestGanttClipsEventsOutsideWindow(t *testing.T) {
	rec := NewRecorder()
	rec.Record(0, "p", "run") // ends at 100 (next event)
	rec.Record(100, "p", "wait")
	rec.Record(200, "p", "run")
	var sb strings.Builder
	// Window [50, 150): the leading run is clipped at the left edge, the
	// trailing run falls entirely outside and must not appear.
	if err := rec.Gantt(&sb, 50, 150, 20); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "#") || !strings.Contains(out, "-") {
		t.Errorf("window missing clipped states:\n%s", out)
	}
}

func TestGanttTinyWidthAxis(t *testing.T) {
	// Width smaller than the axis labels must truncate, not panic.
	rec := NewRecorder()
	rec.Record(0, "p", "run")
	var sb strings.Builder
	if err := rec.Gantt(&sb, 0, 123456789, 4); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.Contains(line, "|") && len(line) > len("p |")+4+1 {
			t.Errorf("row wider than width budget: %q", line)
		}
	}
}

func TestStateDurationsZeroAndNegativeTail(t *testing.T) {
	rec := NewRecorder()
	rec.Record(10, "p", "run")
	rec.Record(10, "p", "wait") // zero-duration run: dropped
	d := rec.StateDurations(5)  // until before the active state began
	if d["p"]["run"] != 0 {
		t.Errorf("zero-duration state kept: %v", d)
	}
	if d["p"]["wait"] != 0 {
		t.Errorf("negative tail duration kept: %v", d)
	}
}

func TestStateDurationsUnsortedEvents(t *testing.T) {
	// Manually recorded events may arrive out of order; durations must be
	// integrated in time order regardless.
	rec := NewRecorder()
	rec.Record(20, "p", "run")
	rec.Record(0, "p", "idle")
	d := rec.StateDurations(30)
	if math.Abs(d["p"]["idle"]-20) > 1e-12 || math.Abs(d["p"]["run"]-10) > 1e-12 {
		t.Errorf("durations = %v, want idle 20 / run 10", d)
	}
}

func TestTracksSortedAndDistinct(t *testing.T) {
	rec := NewRecorder()
	rec.Record(0, "zeta", "run")
	rec.Record(1, "alpha", "run")
	rec.Record(2, "zeta", "wait")
	got := rec.Tracks()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Errorf("Tracks = %v, want [alpha zeta]", got)
	}
}
