package workload_test

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/rng"
	"repro/internal/workload"
)

// Profile a zero-locality kernel against a host cache and classify it.
func ExampleMeasure() {
	gups := workload.NewGUPS(rng.New(2), 1<<28, 0.3)
	profile, err := workload.Measure(gups,
		cache.Config{SizeBytes: 32 * 1024, LineBytes: 64, Ways: 4, Policy: cache.LRU},
		nil, 200000)
	if err != nil {
		panic(err)
	}
	placement := workload.Partition([]workload.Profile{profile})[0]
	fmt.Printf("%s: miss rate %.2f -> PIM resident: %v\n",
		profile.Kernel, profile.MissRate, placement.OnPIM)
	// Output: gups: miss rate 0.50 -> PIM resident: true
}
