// Package workload provides synthetic application kernels with
// controllable and measurable temporal locality — the workload side of the
// paper's study 1. The paper's model abstracts an application into a
// high-locality fraction (runs on the host, hits in cache) and a
// low-locality fraction %WL (runs in PIM); this package generates concrete
// op streams for representative kernels (streaming, GUPS-style random
// update, pointer chasing, stencil, histogram), measures their locality
// against a concrete cache, and fits the paper's model parameters from the
// measurements, closing the loop from "real" workload to predicted PIM
// gain.
package workload

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/hostpim"
	"repro/internal/rng"
)

// OpKind classifies one operation of a kernel's dynamic stream.
type OpKind uint8

// Operation kinds.
const (
	// Compute is a non-memory operation.
	Compute OpKind = iota
	// Load reads Addr.
	Load
	// Store writes Addr.
	Store
)

// Op is one dynamic operation.
type Op struct {
	Kind OpKind
	Addr int64 // byte address; meaningful for Load/Store
}

// Generator produces an unbounded dynamic operation stream.
type Generator interface {
	// Next returns the next operation.
	Next() Op
	// Name identifies the kernel.
	Name() string
}

// Streamer is a sequential sweep over a large array (STREAM-like): high
// spatial locality, no temporal reuse beyond the cache line.
type Streamer struct {
	st        *rng.Stream
	mix       float64
	footprint int64
	stride    int64
	pos       int64
	gap       int
}

// NewStreamer creates a streaming kernel over footprint bytes with the
// given element stride and memory-op fraction mix.
func NewStreamer(st *rng.Stream, footprint, stride int64, mix float64) *Streamer {
	if footprint <= 0 || stride <= 0 || mix <= 0 || mix > 1 {
		panic("workload: invalid Streamer parameters")
	}
	return &Streamer{st: st, mix: mix, footprint: footprint, stride: stride}
}

// Name implements Generator.
func (s *Streamer) Name() string { return "stream" }

// Next implements Generator.
func (s *Streamer) Next() Op {
	if s.gap > 0 {
		s.gap--
		return Op{Kind: Compute}
	}
	s.gap = s.st.Geometric(s.mix)
	addr := s.pos
	s.pos = (s.pos + s.stride) % s.footprint
	kind := Load
	if s.st.Bernoulli(0.4) {
		kind = Store
	}
	return Op{Kind: kind, Addr: addr}
}

// GUPS is the RandomAccess (giant updates per second) kernel: read-modify-
// write at uniformly random addresses over a huge table. The canonical
// zero-temporal-locality workload that motivates PIM.
type GUPS struct {
	st        *rng.Stream
	mix       float64
	footprint int64
	gap       int
	pendingSt int64 // address of the store half of the RMW, -1 if none
}

// NewGUPS creates the random-update kernel.
func NewGUPS(st *rng.Stream, footprint int64, mix float64) *GUPS {
	if footprint <= 0 || mix <= 0 || mix > 1 {
		panic("workload: invalid GUPS parameters")
	}
	return &GUPS{st: st, mix: mix, footprint: footprint, pendingSt: -1}
}

// Name implements Generator.
func (g *GUPS) Name() string { return "gups" }

// Next implements Generator.
func (g *GUPS) Next() Op {
	if g.pendingSt >= 0 {
		addr := g.pendingSt
		g.pendingSt = -1
		return Op{Kind: Store, Addr: addr}
	}
	if g.gap > 0 {
		g.gap--
		return Op{Kind: Compute}
	}
	g.gap = g.st.Geometric(g.mix)
	addr := int64(g.st.Uint64n(uint64(g.footprint/8))) * 8
	g.pendingSt = addr // RMW: the store follows the load
	return Op{Kind: Load, Addr: addr}
}

// PointerChase walks a random permutation cycle: every load depends on the
// previous one and addresses are uncacheable past the working set.
type PointerChase struct {
	st    *rng.Stream
	mix   float64
	next  []int64
	cur   int64
	gap   int
	elems int64
}

// NewPointerChase builds a random single-cycle permutation of n elements
// (8-byte nodes).
func NewPointerChase(st *rng.Stream, n int64, mix float64) *PointerChase {
	if n <= 1 || mix <= 0 || mix > 1 {
		panic("workload: invalid PointerChase parameters")
	}
	// Sattolo's algorithm: a uniform random cyclic permutation.
	next := make([]int64, n)
	for i := range next {
		next[i] = int64(i)
	}
	for i := n - 1; i > 0; i-- {
		j := int64(st.Uint64n(uint64(i)))
		next[i], next[j] = next[j], next[i]
	}
	return &PointerChase{st: st, mix: mix, next: next, elems: n}
}

// Name implements Generator.
func (p *PointerChase) Name() string { return "pointer-chase" }

// Next implements Generator.
func (p *PointerChase) Next() Op {
	if p.gap > 0 {
		p.gap--
		return Op{Kind: Compute}
	}
	p.gap = p.st.Geometric(p.mix)
	addr := p.cur * 8
	p.cur = p.next[p.cur]
	return Op{Kind: Load, Addr: addr}
}

// Stencil sweeps a 2-D grid reading a 5-point neighbourhood per element:
// substantial reuse between successive elements (three of five points were
// touched on the previous row pass), the classic cache-friendly HPC loop.
type Stencil struct {
	st    *rng.Stream
	mix   float64
	w, h  int64
	x, y  int64
	phase int
	gap   int
}

// NewStencil creates a w×h 5-point stencil sweep (8-byte elements).
func NewStencil(st *rng.Stream, w, h int64, mix float64) *Stencil {
	if w < 3 || h < 3 || mix <= 0 || mix > 1 {
		panic("workload: invalid Stencil parameters")
	}
	return &Stencil{st: st, mix: mix, w: w, h: h, x: 1, y: 1}
}

// Name implements Generator.
func (s *Stencil) Name() string { return "stencil" }

// Next implements Generator.
func (s *Stencil) Next() Op {
	if s.gap > 0 {
		s.gap--
		return Op{Kind: Compute}
	}
	s.gap = s.st.Geometric(s.mix)
	var dx, dy int64
	kind := Load
	switch s.phase {
	case 0:
		dx, dy = 0, 0
	case 1:
		dx, dy = -1, 0
	case 2:
		dx, dy = 1, 0
	case 3:
		dx, dy = 0, -1
	case 4:
		dx, dy = 0, 1
		kind = Store // write the centre back on the last access
	}
	addr := ((s.y+dy)*s.w + (s.x + dx)) * 8
	s.phase++
	if s.phase == 5 {
		s.phase = 0
		s.x++
		if s.x == s.w-1 {
			s.x = 1
			s.y++
			if s.y == s.h-1 {
				s.y = 1
			}
		}
	}
	return Op{Kind: kind, Addr: addr}
}

// Histogram scatters increments into a small bucket table with a Zipf
// popularity skew: tiny footprint, high temporal locality.
type Histogram struct {
	st      *rng.Stream
	mix     float64
	zipf    *rng.Zipf
	gap     int
	pending int64
}

// NewHistogram creates a histogram kernel with the given bucket count and
// Zipf skew theta.
func NewHistogram(st *rng.Stream, buckets int, theta, mix float64) *Histogram {
	if buckets <= 0 || mix <= 0 || mix > 1 {
		panic("workload: invalid Histogram parameters")
	}
	return &Histogram{st: st, mix: mix, zipf: rng.NewZipf(buckets, theta), pending: -1}
}

// Name implements Generator.
func (h *Histogram) Name() string { return "histogram" }

// Next implements Generator.
func (h *Histogram) Next() Op {
	if h.pending >= 0 {
		addr := h.pending
		h.pending = -1
		return Op{Kind: Store, Addr: addr}
	}
	if h.gap > 0 {
		h.gap--
		return Op{Kind: Compute}
	}
	h.gap = h.st.Geometric(h.mix)
	addr := int64(h.zipf.Sample(h.st)-1) * 8
	h.pending = addr
	return Op{Kind: Load, Addr: addr}
}

// Profile is the measured behaviour of a kernel against a concrete cache.
type Profile struct {
	Kernel   string
	Ops      int64
	MemOps   int64
	MissRate float64
	// MixLS is the measured memory-op fraction.
	MixLS float64
}

// Measure drives n operations of gen through a concrete cache and returns
// the profile.
func Measure(gen Generator, cfg cache.Config, st *rng.Stream, n int64) (Profile, error) {
	c, err := cache.New(cfg, st)
	if err != nil {
		return Profile{}, err
	}
	p := Profile{Kernel: gen.Name(), Ops: n}
	for i := int64(0); i < n; i++ {
		op := gen.Next()
		if op.Kind == Compute {
			continue
		}
		p.MemOps++
		c.Access(op.Addr)
	}
	p.MissRate = c.MissRate()
	if p.Ops > 0 {
		p.MixLS = float64(p.MemOps) / float64(p.Ops)
	}
	return p, nil
}

// Placement is a partitioning decision for one kernel.
type Placement struct {
	Profile Profile
	// OnPIM reports whether the kernel belongs on the LWP array.
	OnPIM bool
}

// MissThreshold is the default miss rate above which a kernel is
// classified low-locality (PIM-resident). The paper's dichotomy is binary:
// "when data accesses exhibit no reuse, the operation is assumed to be
// performed by the PIM devices". Note that a read-modify-write kernel with
// zero reuse still measures ~0.5 (the store hits the just-loaded line), so
// the threshold sits below that.
const MissThreshold = 0.4

// Partition classifies kernels by their measured miss rate.
func Partition(profiles []Profile) []Placement {
	out := make([]Placement, len(profiles))
	for i, p := range profiles {
		out[i] = Placement{Profile: p, OnPIM: p.MissRate >= MissThreshold}
	}
	return out
}

// FitParams folds an application — a weighted mixture of kernels — into
// the paper's model: %WL is the op-weight of PIM-resident kernels, Pmiss
// is the op-weighted miss rate of the host-resident remainder, MixLS the
// op-weighted memory fraction. Weights are relative op counts.
func FitParams(base hostpim.Params, placements []Placement, weights []float64) (hostpim.Params, error) {
	if len(placements) == 0 || len(placements) != len(weights) {
		return hostpim.Params{}, fmt.Errorf("workload: %d placements, %d weights", len(placements), len(weights))
	}
	var total, pimW float64
	var hostMiss, hostW, mixAcc float64
	for i, pl := range placements {
		w := weights[i]
		if w < 0 {
			return hostpim.Params{}, fmt.Errorf("workload: negative weight %g", w)
		}
		total += w
		mixAcc += w * pl.Profile.MixLS
		if pl.OnPIM {
			pimW += w
		} else {
			hostW += w
			hostMiss += w * pl.Profile.MissRate
		}
	}
	if total == 0 {
		return hostpim.Params{}, fmt.Errorf("workload: zero total weight")
	}
	p := base
	p.PctWL = pimW / total
	p.MixLS = mixAcc / total
	if hostW > 0 {
		p.Pmiss = hostMiss / hostW
	}
	if err := p.Validate(); err != nil {
		return hostpim.Params{}, err
	}
	return p, nil
}
