package workload

import (
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/hostpim"
	"repro/internal/rng"
)

func testCache() cache.Config {
	return cache.Config{SizeBytes: 32 * 1024, LineBytes: 64, Ways: 4, Policy: cache.LRU}
}

func measure(t *testing.T, gen Generator) Profile {
	t.Helper()
	p, err := Measure(gen, testCache(), nil, 300000)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMixFractionMeasured(t *testing.T) {
	// Each kernel should exhibit roughly its configured memory-op mix.
	const mix = 0.3
	gens := []Generator{
		NewStreamer(rng.New(1), 1<<26, 8, mix),
		NewGUPS(rng.New(2), 1<<28, mix),
		NewPointerChase(rng.New(3), 1<<20, mix),
		NewStencil(rng.New(4), 2048, 2048, mix),
		NewHistogram(rng.New(5), 512, 1.1, mix),
	}
	for _, g := range gens {
		p := measure(t, g)
		// RMW kernels emit two memory ops per access event, so allow a
		// band rather than an exact match.
		if p.MixLS < 0.2 || p.MixLS > 0.55 {
			t.Errorf("%s: measured mix = %g, configured %g", g.Name(), p.MixLS, mix)
		}
	}
}

func TestLocalityOrdering(t *testing.T) {
	// Miss rates must order: histogram < stencil < {gups, pointer-chase};
	// streaming sits between (spatial but no temporal locality).
	hist := measure(t, NewHistogram(rng.New(5), 512, 1.1, 0.3))
	sten := measure(t, NewStencil(rng.New(4), 2048, 2048, 0.3))
	strm := measure(t, NewStreamer(rng.New(1), 1<<26, 8, 0.3))
	gups := measure(t, NewGUPS(rng.New(2), 1<<28, 0.3))
	chase := measure(t, NewPointerChase(rng.New(3), 1<<20, 0.3))

	if !(hist.MissRate < 0.05) {
		t.Errorf("histogram miss rate = %g, want tiny", hist.MissRate)
	}
	if !(sten.MissRate < 0.3) {
		t.Errorf("stencil miss rate = %g, want cache-friendly", sten.MissRate)
	}
	// GUPS is read-modify-write: the store hits the just-loaded line, so
	// zero reuse measures ~0.5, not 1.
	if math.Abs(gups.MissRate-0.5) > 0.05 {
		t.Errorf("gups miss rate = %g, want ~0.5 (RMW pairing)", gups.MissRate)
	}
	if !(chase.MissRate > 0.8) {
		t.Errorf("pointer chase miss rate = %g, want ~1", chase.MissRate)
	}
	if !(hist.MissRate < sten.MissRate && sten.MissRate < gups.MissRate) {
		t.Errorf("locality ordering violated: hist=%g sten=%g gups=%g",
			hist.MissRate, sten.MissRate, gups.MissRate)
	}
	// Streaming with an 8-byte stride enjoys line reuse: ~1 miss per 8
	// accesses.
	if strm.MissRate < 0.08 || strm.MissRate > 0.35 {
		t.Errorf("stream miss rate = %g, want ~0.125 (line-grain)", strm.MissRate)
	}
}

func TestPointerChaseIsSingleCycle(t *testing.T) {
	// Sattolo's construction yields one cycle covering all n elements:
	// following next from 0 must return to 0 after exactly n steps.
	pc := NewPointerChase(rng.New(9), 1000, 0.5)
	cur := int64(0)
	for i := 0; i < 999; i++ {
		cur = pc.next[cur]
		if cur == 0 {
			t.Fatalf("cycle closed after %d steps, want 1000", i+1)
		}
	}
	if pc.next[cur] != 0 {
		t.Error("walk did not return to origin after n steps")
	}
}

func TestGUPSReadModifyWrite(t *testing.T) {
	g := NewGUPS(rng.New(11), 1<<20, 1) // mix 1: every op is memory
	var loads, stores int
	var lastLoad int64 = -1
	for i := 0; i < 1000; i++ {
		op := g.Next()
		switch op.Kind {
		case Load:
			loads++
			lastLoad = op.Addr
		case Store:
			stores++
			if op.Addr != lastLoad {
				t.Fatal("store does not target the loaded address (not RMW)")
			}
		}
	}
	if loads != stores {
		t.Errorf("loads=%d stores=%d, want paired", loads, stores)
	}
}

func TestStencilAddressesInBounds(t *testing.T) {
	s := NewStencil(rng.New(13), 64, 64, 1)
	limit := int64(64 * 64 * 8)
	for i := 0; i < 100000; i++ {
		op := s.Next()
		if op.Kind == Compute {
			continue
		}
		if op.Addr < 0 || op.Addr >= limit {
			t.Fatalf("stencil address %d out of grid", op.Addr)
		}
	}
}

func TestPartition(t *testing.T) {
	profiles := []Profile{
		{Kernel: "hot", MissRate: 0.02},
		{Kernel: "rmw", MissRate: 0.5},
		{Kernel: "cold", MissRate: 0.97},
	}
	placements := Partition(profiles)
	if placements[0].OnPIM || !placements[1].OnPIM || !placements[2].OnPIM {
		t.Errorf("partition wrong: %+v", placements)
	}
}

func TestFitParams(t *testing.T) {
	base := hostpim.DefaultParams()
	placements := []Placement{
		{Profile: Profile{Kernel: "host", MissRate: 0.08, MixLS: 0.25}, OnPIM: false},
		{Profile: Profile{Kernel: "pim", MissRate: 0.99, MixLS: 0.35}, OnPIM: true},
	}
	weights := []float64{3, 1}
	p, err := FitParams(base, placements, weights)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.PctWL-0.25) > 1e-12 {
		t.Errorf("PctWL = %g, want 0.25", p.PctWL)
	}
	if math.Abs(p.Pmiss-0.08) > 1e-12 {
		t.Errorf("Pmiss = %g, want 0.08 (host-resident only)", p.Pmiss)
	}
	wantMix := (3*0.25 + 1*0.35) / 4
	if math.Abs(p.MixLS-wantMix) > 1e-12 {
		t.Errorf("MixLS = %g, want %g", p.MixLS, wantMix)
	}
}

func TestFitParamsErrors(t *testing.T) {
	base := hostpim.DefaultParams()
	if _, err := FitParams(base, nil, nil); err == nil {
		t.Error("empty placements accepted")
	}
	pl := []Placement{{Profile: Profile{MixLS: 0.3}}}
	if _, err := FitParams(base, pl, []float64{-1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := FitParams(base, pl, []float64{0}); err == nil {
		t.Error("zero total weight accepted")
	}
}

func TestEndToEndPrediction(t *testing.T) {
	// The full loop: measure kernels, partition, fit, predict. A GUPS-
	// heavy application on 32 PIM nodes should predict a solid gain.
	profiles := []Profile{
		measure(t, NewHistogram(rng.New(5), 512, 1.1, 0.3)),
		measure(t, NewGUPS(rng.New(2), 1<<28, 0.3)),
	}
	placements := Partition(profiles)
	p, err := FitParams(hostpim.DefaultParams(), placements, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	p.N = 32
	r, err := hostpim.Analytic(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Gain < 3 {
		t.Errorf("predicted gain = %g for a GUPS-dominated app on 32 nodes", r.Gain)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	mk := func() []Op {
		g := NewGUPS(rng.New(21), 1<<20, 0.4)
		ops := make([]Op, 100)
		for i := range ops {
			ops[i] = g.Next()
		}
		return ops
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("generator not deterministic")
		}
	}
}

func TestInvalidParamsPanic(t *testing.T) {
	for i, f := range []func(){
		func() { NewStreamer(rng.New(1), 0, 8, 0.3) },
		func() { NewGUPS(rng.New(1), 1024, 0) },
		func() { NewPointerChase(rng.New(1), 1, 0.3) },
		func() { NewStencil(rng.New(1), 2, 2, 0.3) },
		func() { NewHistogram(rng.New(1), 0, 1, 0.3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid params accepted", i)
				}
			}()
			f()
		}()
	}
}
