package repro

// Engine-level regression tests for the execution-driven machine backend:
// the same guarantees PR 1 pinned for the statistical backends — every
// run a pure function of (ID, Config), and the concurrent engine
// reproducing the serial byte stream exactly — must hold for scenarios
// that execute ISA programs on the VM. These run in Quick mode and stay
// in the -short pass: they are the CI smoke for the machine presets.

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/scenario"
)

// machineExperiments wraps every machine preset as an engine experiment
// on the machine backend, plus the cross-validated ping on "all".
func machineExperiments(t *testing.T) []*core.Experiment {
	t.Helper()
	var exps []*core.Experiment
	for _, s := range scenario.Presets() {
		if s.Kind() != scenario.KindMachine {
			continue
		}
		e, err := core.ScenarioExperiment(s.Name, "machine")
		if err != nil {
			t.Fatal(err)
		}
		exps = append(exps, e)
	}
	if len(exps) < 4 {
		t.Fatalf("want >= 4 machine presets, have %d", len(exps))
	}
	e, err := core.ScenarioExperiment("machine-ping", "all")
	if err != nil {
		t.Fatal(err)
	}
	return append(exps, e)
}

func TestMachineScenarioExperimentsDeterministic(t *testing.T) {
	cfg := core.Config{Seed: 2004, Quick: true}
	for _, e := range machineExperiments(t) {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			run := func() (*core.Outcome, []byte) {
				var buf bytes.Buffer
				o, err := e.Run(cfg, &buf)
				if err != nil {
					t.Fatal(err)
				}
				return o, buf.Bytes()
			}
			o1, out1 := run()
			o2, out2 := run()
			if !bytes.Equal(out1, out2) {
				t.Errorf("%s: rendered output differs between identical runs", e.ID)
			}
			if !reflect.DeepEqual(o1.Metrics, o2.Metrics) {
				t.Errorf("%s: metrics differ between identical runs", e.ID)
			}
			for _, c := range o1.Failed() {
				t.Errorf("%s: failed check %s (%s)", e.ID, c.Name, c.Detail)
			}
		})
	}
}

func TestMachineScenarioEngineParallelMatchesSerial(t *testing.T) {
	// The engine fanning machine experiments across 8 workers must
	// reproduce the serial pass byte for byte — the backend holds the
	// repo's "byte-identical parallel reruns" guarantee.
	cfg := core.Config{Seed: 2004, Quick: true}
	exps := machineExperiments(t)

	var serialOut bytes.Buffer
	serial := make(map[string]*core.Outcome, len(exps))
	for _, e := range exps {
		serialOut.WriteString(core.Banner(e.ID, e.Title))
		o, err := e.Run(cfg, &serialOut)
		if err != nil {
			t.Fatal(err)
		}
		serial[e.ID] = o
		core.RenderChecks(o, &serialOut)
	}

	results, err := engine.New(engine.Options{Workers: 8}).Run(cfg, exps)
	if err != nil {
		t.Fatal(err)
	}
	var engineOut bytes.Buffer
	if err := engine.WriteResults(&engineOut, results, 0.95); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialOut.Bytes(), engineOut.Bytes()) {
		t.Error("engine rendered stream differs from serial pass over machine scenarios")
	}
	for _, r := range results {
		want := serial[r.ID]
		if !reflect.DeepEqual(r.Outcome.Metrics, want.Metrics) {
			t.Errorf("%s: engine metrics differ from serial run", r.ID)
		}
		if !reflect.DeepEqual(r.Outcome.Checks, want.Checks) {
			t.Errorf("%s: engine checks differ from serial run", r.ID)
		}
	}
}

func TestMachineScenarioReplicatedAggregates(t *testing.T) {
	// Replication through the engine: derived seeds per replicate, and
	// the deterministic VM makes every replicate's total identical at a
	// fixed seed, so the CI width must be zero for seed-independent
	// metrics... the VM's cycle count depends only on the program path,
	// which for ping is seed-free: mean == each replicate, CI == 0.
	e, err := core.ScenarioExperiment("machine-ping", "machine")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Seed: 7, Quick: true}
	results, err := engine.New(engine.Options{Replications: 3}).Run(cfg, []*core.Experiment{e})
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	agg, ok := r.Aggregates["machine/total"]
	if !ok {
		t.Fatalf("no machine/total aggregate; keys: %d", len(r.Aggregates))
	}
	if agg.CI != 0 {
		t.Errorf("ping total varies across replicates: CI = %g", agg.CI)
	}
	if agg.Mean <= 0 {
		t.Errorf("ping total mean = %g", agg.Mean)
	}
}
